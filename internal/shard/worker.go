package shard

// The shard worker: runs one shard's slice of a partitioned sweep
// through the ordinary engine into a self-contained cache directory,
// then records what it ran in a shard.json summary the merge step
// verifies against.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"accesys/internal/sweep"
)

// SummaryName is the per-shard manifest written next to the cache
// entries. Its name deliberately fails the cache's entry-name check,
// so GC, Usage, and import all ignore it.
const SummaryName = "shard.json"

// Summary records what one shard worker ran — the merge step's unit
// of verification (binary salt compatibility) and accounting (points,
// walls, counters).
type Summary struct {
	// Scenario and Full echo the plan the worker executed.
	Scenario string `json:"scenario"`
	Full     bool   `json:"full"`
	// Shard and Of locate this slice in the partition (Shard in
	// [0, Of)).
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Salt is the worker binary's fingerprint — the cache salt every
	// entry in this directory is keyed under. Shards merged together
	// must agree on it.
	Salt string `json:"salt"`
	// Points is the slice size; Cold ran, Warm came from this shard's
	// own cache (a re-run worker).
	Points int `json:"points"`
	Cold   int `json:"cold"`
	Warm   int `json:"warm"`
	// WallNs is the host-side wall time of the slice.
	WallNs int64 `json:"wall_ns"`
	// Counters are the shard cache's persisted totals after the run.
	Counters sweep.Counters `json:"counters"`
}

// Worker executes one shard of a partitioned sweep.
type Worker struct {
	// Dir is the shard's self-contained cache directory (created if
	// needed). Every outcome and the shard.json summary land here.
	Dir string
	// Jobs bounds the slice's worker pool; <= 0 means one per CPU.
	Jobs int
	// OnResult, when non-nil, observes each completed point (progress
	// reporting). Calls are serialised by the engine.
	OnResult func(sweep.Result)
	// Clock supplies the wall-clock readings behind the summary's
	// WallNs and the engine's per-point walls (which feed the weighted
	// partitioner's profile), so scheduling tests run on a fake clock.
	// Nil means time.Now.
	Clock func() time.Time
}

// now reads the worker's clock.
func (w *Worker) now() time.Time {
	if w.Clock != nil {
		return w.Clock()
	}
	return time.Now()
}

// Run executes shard k of the plan. points must be the same expansion
// the plan was built from — Run revalidates every fingerprint digest
// against the plan before simulating, so a stale plan fails loudly
// instead of filling the cache with mislabeled slices. The returned
// summary has also been written to Dir/shard.json.
func (w *Worker) Run(plan *Plan, k int, points []sweep.Point) (*Summary, error) {
	if k < 0 || k >= plan.Shards {
		return nil, fmt.Errorf("shard: shard %d out of range [0, %d)", k, plan.Shards)
	}
	if len(points) != len(plan.Points) {
		return nil, fmt.Errorf("shard: plan covers %d points, expansion has %d", len(plan.Points), len(points))
	}
	for i, pt := range points {
		if Digest(pt.Fingerprint) != plan.Points[i].Fingerprint {
			return nil, fmt.Errorf("shard: point %d (%s) does not match the plan; regenerate the plan from this manifest", i, pt.Key)
		}
	}
	cache, err := sweep.OpenSalted(w.Dir)
	if err != nil {
		return nil, err
	}
	// Wall-time profiling feeds the weighted partitioner; a malformed
	// profile is a scheduling hint gone bad, not a reason to refuse
	// work, so it is simply not updated this run.
	prof, perr := sweep.LoadProfile(w.Dir)
	if perr != nil {
		prof = nil
	}

	sel := plan.Select(k)
	slice := make([]sweep.Point, len(sel))
	for i, idx := range sel {
		slice[i] = points[idx]
	}

	sum := &Summary{
		Scenario: plan.Scenario,
		Full:     plan.Full,
		Shard:    k,
		Of:       plan.Shards,
		Salt:     cache.Salt,
		Points:   len(slice),
	}
	eng := &sweep.Engine{Jobs: w.Jobs, Cache: cache, Profile: prof, Clock: w.Clock, OnResult: func(r sweep.Result) {
		if r.Cached {
			sum.Warm++
		} else {
			sum.Cold++
		}
		if w.OnResult != nil {
			w.OnResult(r)
		}
	}}
	start := w.now()
	eng.Run(slice)
	sum.WallNs = w.now().Sub(start).Nanoseconds()

	if err := cache.FlushCounters(); err != nil {
		return nil, fmt.Errorf("shard: persisting counters: %v", err)
	}
	if prof != nil {
		if err := prof.Flush(); err != nil {
			return nil, fmt.Errorf("shard: persisting wall profile: %v", err)
		}
	}
	if sum.Counters, err = cache.Counters(); err != nil {
		return nil, fmt.Errorf("shard: reading counters: %v", err)
	}
	if err := writeSummary(w.Dir, sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// writeSummary stages the summary and renames it into place, so a
// merge never reads a half-written shard.json.
func writeSummary(dir string, sum *Summary) error {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return sweep.WriteFileAtomic(dir, "shard-*.tmp", SummaryName, append(data, '\n'))
}

// ReadSummary loads dir's shard.json — how the merge step learns a
// directory's salt and accounting.
func ReadSummary(dir string) (*Summary, error) {
	data, err := os.ReadFile(filepath.Join(dir, SummaryName))
	if err != nil {
		return nil, fmt.Errorf("shard: %s is not a shard directory: %v", dir, err)
	}
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, fmt.Errorf("shard: %s: malformed %s: %v", dir, SummaryName, err)
	}
	return &sum, nil
}
