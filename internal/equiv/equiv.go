// Package equiv is the cross-backend equivalence harness: it runs the
// same expanded scenario points through the timing backend (the event
// simulation, via the sweep engine and its result cache) and the
// analytic backend (the closed-form models of internal/analytic,
// parameterized from the same core.Config), normalizes both into
// Observation records, and reports per-point relative divergence
// against configurable tolerance bands. The ROADMAP names this check
// as the mechanism that turns the result cache from a speedup into a
// validation asset: warm cache outcomes are compared without
// re-simulating.
package equiv

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// Default tolerance bands: a point fails beyond Tol and warns beyond
// Warn. Scenarios override them via their AnalyticSpec; the CLI's
// -tol/-warn flags override both.
const (
	DefaultTol  = 0.15
	DefaultWarn = 0.075
)

// Backend names the two sides of every comparison.
const (
	BackendTiming   = "timing"
	BackendAnalytic = "analytic"
)

// Observation is one normalized measurement: a backend's value for one
// metric of one design point. Fingerprint is the point's cache-key
// material, so observations from different processes (or from warm
// cache entries) align on content, not on run order.
type Observation struct {
	Fingerprint string  `json:"fingerprint"`
	Point       string  `json:"point"`
	Backend     string  `json:"backend"`
	Metric      string  `json:"metric"`
	Value       float64 `json:"value"` // nanoseconds
}

// Status classifies one comparison against the tolerance bands.
type Status string

// Comparison statuses, ordered by severity. NoModel marks points the
// analytic backend declines by design (scenario.ErrNoModel: contended
// multi-accelerator runs, 2-level trees, mixed-kind farms, tenant
// schedules) — they are counted and surfaced, but a declared model gap
// is not a conformance break, so they do not fail the audit.
const (
	Pass    Status = "pass"
	Warn    Status = "warn"
	Fail    Status = "fail"
	NoModel Status = "nomodel"
)

// Comparison is the per-point, per-metric divergence record.
type Comparison struct {
	Point    string  `json:"point"`
	Metric   string  `json:"metric"`
	Timing   float64 `json:"timing_ns"`
	Analytic float64 `json:"analytic_ns"`
	// Rel is |timing-analytic| / timing. It is NaN for a
	// missing-counterpart failure and +Inf for a zero timing baseline;
	// JSON (which cannot carry non-finite numbers) encodes those as
	// null.
	Rel    float64 `json:"rel"`
	Status Status  `json:"status"`
}

// comparisonJSON is Comparison's wire form: rel becomes nullable so
// non-finite divergences survive encoding instead of failing
// json.Marshal exactly when the audit found a conformance break.
type comparisonJSON struct {
	Point    string   `json:"point"`
	Metric   string   `json:"metric"`
	Timing   float64  `json:"timing_ns"`
	Analytic float64  `json:"analytic_ns"`
	Rel      *float64 `json:"rel"`
	Status   Status   `json:"status"`
}

// MarshalJSON implements json.Marshaler.
func (c Comparison) MarshalJSON() ([]byte, error) {
	out := comparisonJSON{Point: c.Point, Metric: c.Metric,
		Timing: c.Timing, Analytic: c.Analytic, Status: c.Status}
	if !math.IsNaN(c.Rel) && !math.IsInf(c.Rel, 0) {
		out.Rel = &c.Rel
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler: a null rel reads back as
// NaN.
func (c *Comparison) UnmarshalJSON(data []byte) error {
	var in comparisonJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*c = Comparison{Point: in.Point, Metric: in.Metric,
		Timing: in.Timing, Analytic: in.Analytic, Status: in.Status, Rel: math.NaN()}
	if in.Rel != nil {
		c.Rel = *in.Rel
	}
	return nil
}

// Tolerances are the resolved comparison bands.
type Tolerances struct {
	Tol  float64 `json:"tol"`
	Warn float64 `json:"warn"`
}

// Resolve fills unset bands from the scenario's AnalyticSpec and the
// harness defaults: an explicit CLI value wins, then the scenario,
// then DefaultTol/DefaultWarn (warn defaulting to half of a custom
// fail threshold).
func Resolve(cli Tolerances, spec *scenario.AnalyticSpec) Tolerances {
	t := cli
	if t.Tol == 0 && spec != nil {
		t.Tol = spec.Tol
	}
	if t.Warn == 0 && spec != nil {
		t.Warn = spec.Warn
	}
	if t.Tol == 0 {
		t.Tol = DefaultTol
	}
	if t.Warn == 0 {
		if t.Tol == DefaultTol {
			t.Warn = DefaultWarn
		} else {
			t.Warn = t.Tol / 2
		}
	}
	// Bands from different sources (CLI warn vs scenario/default tol)
	// can invert; a warn band past the fail band collapses onto it
	// rather than reclassifying failures.
	if t.Warn > t.Tol {
		t.Warn = t.Tol
	}
	return t
}

// Classify places one relative divergence in a band.
func (t Tolerances) Classify(rel float64) Status {
	switch {
	case rel > t.Tol:
		return Fail
	case rel > t.Warn:
		return Warn
	default:
		return Pass
	}
}

// Report is the machine-readable result of one scenario audit.
type Report struct {
	Scenario    string       `json:"scenario"`
	Tolerances  Tolerances   `json:"tolerances"`
	Comparisons []Comparison `json:"comparisons"`
	Passed      int          `json:"passed"`
	Warned      int          `json:"warned"`
	Failed      int          `json:"failed"`
	// NoModeled counts points the analytic backend declined by design;
	// they never fail the audit.
	NoModeled int `json:"nomodel"`
	// MaxRel is the worst divergence observed.
	MaxRel float64 `json:"max_rel"`
	// MeanRel is the mean divergence across comparisons.
	MeanRel float64 `json:"mean_rel"`
}

// OK reports whether every comparison stayed inside the fail band.
func (r *Report) OK() bool { return r.Failed == 0 }

// JSON renders the report for machine consumption.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Result renders the report as a human table through the same
// renderer the scenario sweeps print with.
func (r *Report) Result() *scenario.Result {
	res := &scenario.Result{
		ID:      r.Scenario,
		Title:   "timing vs analytic divergence",
		Headers: []string{"point", "metric", "timing_ms", "analytic_ms", "rel", "status"},
	}
	for _, c := range r.Comparisons {
		analytic, rel := fmt.Sprintf("%.3f", c.Analytic/1e6), fmt.Sprintf("%+.1f%%", 100*signedRel(c))
		if c.Status == NoModel {
			analytic, rel = "-", "-"
		}
		res.AddRow(c.Point, c.Metric,
			fmt.Sprintf("%.3f", c.Timing/1e6),
			analytic, rel,
			string(c.Status))
	}
	res.Note("%d pass, %d warn, %d fail, %d nomodel (warn > %.1f%%, fail > %.1f%%)",
		r.Passed, r.Warned, r.Failed, r.NoModeled, 100*r.Tolerances.Warn, 100*r.Tolerances.Tol)
	res.Note("divergence: max %.1f%%, mean %.1f%%", 100*r.MaxRel, 100*r.MeanRel)
	return res
}

// signedRel is the signed relative error (analytic fast = negative).
func signedRel(c Comparison) float64 {
	if c.Timing == 0 {
		return 0
	}
	return (c.Analytic - c.Timing) / c.Timing
}

// TimingObservations normalizes swept outcomes into observations: the
// primary duration becomes metric "exec"; a ViT outcome's split values
// become "gemm" and "nongemm".
func TimingObservations(points []sweep.Point, outs []sweep.Outcome) []Observation {
	var obs []Observation
	add := func(p sweep.Point, metric string, ns float64) {
		obs = append(obs, Observation{
			Fingerprint: p.Fingerprint,
			Point:       p.Key,
			Backend:     BackendTiming,
			Metric:      metric,
			Value:       ns,
		})
	}
	for i, p := range points {
		o := outs[i]
		add(p, "exec", o.Dur.Nanoseconds())
		if _, ok := o.Values["gemm"]; ok {
			add(p, "gemm", o.Value("gemm")/1e3) // stored in ticks (ps)
			add(p, "nongemm", o.Value("nongemm")/1e3)
		}
	}
	return obs
}

// AnalyticObservations evaluates the analytic backend for every run.
// Runs the backend declines by design (scenario.ErrNoModel) produce no
// observations; their fingerprints come back in the second return so
// Compare can classify them "nomodel" instead of missing-counterpart
// failures. Any other analytic error stays fatal.
func AnalyticObservations(sc *scenario.Scenario, runs []scenario.Run, points []sweep.Point) ([]Observation, map[string]bool, error) {
	var obs []Observation
	nomodel := make(map[string]bool)
	for i, r := range runs {
		metrics, err := sc.AnalyticMetrics(r)
		if errors.Is(err, scenario.ErrNoModel) {
			nomodel[points[i].Fingerprint] = true
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, 0, len(metrics))
		for name := range metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			obs = append(obs, Observation{
				Fingerprint: points[i].Fingerprint,
				Point:       r.Key,
				Backend:     BackendAnalytic,
				Metric:      name,
				Value:       metrics[name],
			})
		}
	}
	return obs, nomodel, nil
}

// Compare joins the two observation sets on (fingerprint, metric) and
// classifies each pair. Observations missing a counterpart are
// reported as failures with a NaN divergence — a backend that cannot
// speak to a point is a conformance break, not a silent skip — unless
// the point's fingerprint is in nomodel, in which case the analytic
// backend declined it by design and the comparison records "nomodel".
func Compare(timing, an []Observation, nomodel map[string]bool, tol Tolerances) []Comparison {
	type key struct{ fp, metric string }
	index := make(map[key]Observation, len(an))
	for _, o := range an {
		index[key{o.Fingerprint, o.Metric}] = o
	}
	var comps []Comparison
	seen := make(map[key]bool, len(timing))
	for _, t := range timing {
		k := key{t.Fingerprint, t.Metric}
		seen[k] = true
		a, ok := index[k]
		if !ok {
			status := Fail
			if nomodel[t.Fingerprint] {
				status = NoModel
			}
			comps = append(comps, Comparison{Point: t.Point, Metric: t.Metric,
				Timing: t.Value, Rel: math.NaN(), Status: status})
			continue
		}
		rel := 0.0
		if t.Value != 0 {
			rel = math.Abs(t.Value-a.Value) / t.Value
		} else if a.Value != 0 {
			rel = math.Inf(1)
		}
		comps = append(comps, Comparison{
			Point:    t.Point,
			Metric:   t.Metric,
			Timing:   t.Value,
			Analytic: a.Value,
			Rel:      rel,
			Status:   tol.Classify(rel),
		})
	}
	for _, a := range an {
		k := key{a.Fingerprint, a.Metric}
		if !seen[k] {
			comps = append(comps, Comparison{Point: a.Point, Metric: a.Metric,
				Analytic: a.Value, Rel: math.NaN(), Status: Fail})
		}
	}
	return comps
}

// Summarize folds comparisons into a report. Non-finite divergences
// (NaN for a missing counterpart, +Inf for a zero timing baseline)
// count as failures but are excluded from the divergence statistics
// entirely — diluting the mean with zeros would understate divergence
// exactly when the audit is most broken, and MaxRel/MeanRel must stay
// JSON-encodable.
func Summarize(name string, tol Tolerances, comps []Comparison) *Report {
	r := &Report{Scenario: name, Tolerances: tol, Comparisons: comps}
	var sum float64
	var measured int
	for _, c := range comps {
		switch c.Status {
		case Pass:
			r.Passed++
		case Warn:
			r.Warned++
		case NoModel:
			r.NoModeled++
		default:
			r.Failed++
		}
		if math.IsNaN(c.Rel) || math.IsInf(c.Rel, 0) {
			continue
		}
		if c.Rel > r.MaxRel {
			r.MaxRel = c.Rel
		}
		sum += c.Rel
		measured++
	}
	if measured > 0 {
		r.MeanRel = sum / float64(measured)
	}
	return r
}

// Run audits one scenario end to end: expand the matrix, obtain timing
// outcomes through the sweep engine (warm cache entries satisfy points
// without re-simulating), evaluate the analytic backend, and compare.
// cli carries explicit tolerance overrides (zero = scenario/harness
// defaults).
func Run(sc *scenario.Scenario, opt scenario.Options, cli Tolerances) (*Report, error) {
	runs, err := sc.Expand(opt.Full)
	if err != nil {
		return nil, err
	}
	points := sc.Points(runs)
	// Probe the analytic backend before paying for simulation, so a
	// scenario without an analytic mapping errors instantly.
	an, nomodel, err := AnalyticObservations(sc, runs, points)
	if err != nil {
		return nil, err
	}
	outs := opt.Sweep("equiv/"+sc.Name, points)
	timing := TimingObservations(points, outs)
	tol := Resolve(cli, sc.Analytic)
	return Summarize(sc.Name, tol, Compare(timing, an, nomodel, tol)), nil
}
