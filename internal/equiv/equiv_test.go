package equiv

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

func TestResolvePrecedence(t *testing.T) {
	cases := []struct {
		name string
		cli  Tolerances
		spec *scenario.AnalyticSpec
		want Tolerances
	}{
		{"defaults", Tolerances{}, nil, Tolerances{Tol: DefaultTol, Warn: DefaultWarn}},
		{"scenario", Tolerances{}, &scenario.AnalyticSpec{Tol: 0.3, Warn: 0.1}, Tolerances{Tol: 0.3, Warn: 0.1}},
		{"scenario tol only", Tolerances{}, &scenario.AnalyticSpec{Tol: 0.3}, Tolerances{Tol: 0.3, Warn: 0.15}},
		{"cli wins", Tolerances{Tol: 0.5, Warn: 0.2}, &scenario.AnalyticSpec{Tol: 0.3, Warn: 0.1}, Tolerances{Tol: 0.5, Warn: 0.2}},
		{"cli tol, scenario warn", Tolerances{Tol: 0.5}, &scenario.AnalyticSpec{Warn: 0.1}, Tolerances{Tol: 0.5, Warn: 0.1}},
		// Bands from different sources can invert; the warn band
		// collapses onto the fail band instead of reclassifying.
		{"cli warn above default tol", Tolerances{Warn: 0.3}, nil, Tolerances{Tol: 0.15, Warn: 0.15}},
		{"cli tol under scenario warn", Tolerances{Tol: 0.05}, &scenario.AnalyticSpec{Warn: 0.1}, Tolerances{Tol: 0.05, Warn: 0.05}},
	}
	for _, c := range cases {
		if got := Resolve(c.cli, c.spec); got != c.want {
			t.Errorf("%s: Resolve = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestClassifyBands(t *testing.T) {
	tol := Tolerances{Tol: 0.15, Warn: 0.075}
	for _, c := range []struct {
		rel  float64
		want Status
	}{
		{0, Pass}, {0.074, Pass}, {0.076, Warn}, {0.15, Warn}, {0.151, Fail}, {math.Inf(1), Fail},
	} {
		if got := tol.Classify(c.rel); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.rel, got, c.want)
		}
	}
}

func obs(backend, fp, metric string, v float64) Observation {
	return Observation{Fingerprint: fp, Point: fp, Backend: backend, Metric: metric, Value: v}
}

func TestCompareJoinsOnFingerprintAndMetric(t *testing.T) {
	tol := Tolerances{Tol: 0.15, Warn: 0.075}
	timing := []Observation{
		obs(BackendTiming, "a", "exec", 100),
		obs(BackendTiming, "b", "exec", 100),
	}
	an := []Observation{
		obs(BackendAnalytic, "a", "exec", 105),
		obs(BackendAnalytic, "b", "exec", 90),
	}
	comps := Compare(timing, an, nil, tol)
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(comps))
	}
	if comps[0].Status != Pass || comps[0].Rel != 0.05 {
		t.Fatalf("point a: %+v", comps[0])
	}
	if comps[1].Status != Warn {
		t.Fatalf("point b: %+v", comps[1])
	}
}

func TestCompareFlagsMissingCounterparts(t *testing.T) {
	tol := Tolerances{Tol: 0.5, Warn: 0.25}
	timing := []Observation{obs(BackendTiming, "only-timing", "exec", 100)}
	an := []Observation{obs(BackendAnalytic, "only-analytic", "exec", 100)}
	comps := Compare(timing, an, nil, tol)
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(comps))
	}
	for _, c := range comps {
		if c.Status != Fail {
			t.Fatalf("missing counterpart not failed: %+v", c)
		}
		if !math.IsNaN(c.Rel) {
			t.Fatalf("missing counterpart should have NaN divergence: %+v", c)
		}
	}
}

func TestCompareZeroTiming(t *testing.T) {
	tol := Tolerances{Tol: 0.15, Warn: 0.075}
	comps := Compare(
		[]Observation{obs(BackendTiming, "z", "exec", 0)},
		[]Observation{obs(BackendAnalytic, "z", "exec", 5)}, nil, tol)
	if comps[0].Status != Fail {
		t.Fatalf("nonzero analytic vs zero timing must fail: %+v", comps[0])
	}
}

func TestSummarizeCounts(t *testing.T) {
	tol := Tolerances{Tol: 0.15, Warn: 0.075}
	comps := []Comparison{
		{Rel: 0.01, Status: Pass},
		{Rel: 0.10, Status: Warn},
		{Rel: 0.30, Status: Fail},
	}
	comps = append(comps, Comparison{Rel: math.NaN(), Status: Fail})
	r := Summarize("demo", tol, comps)
	if r.Passed != 1 || r.Warned != 1 || r.Failed != 2 {
		t.Fatalf("counts: %+v", r)
	}
	if r.OK() {
		t.Fatal("report with failures must not be OK")
	}
	if r.MaxRel != 0.30 {
		t.Fatalf("MaxRel = %v", r.MaxRel)
	}
	if want := (0.01 + 0.10 + 0.30) / 3; math.Abs(r.MeanRel-want) > 1e-12 {
		t.Fatalf("MeanRel = %v, want %v", r.MeanRel, want)
	}
}

func TestReportJSONEncodesNonFiniteDivergence(t *testing.T) {
	// Missing-counterpart failures carry NaN (and zero-baseline ones
	// +Inf); the JSON report must still encode — the machine-readable
	// path matters most exactly when the audit found a conformance
	// break.
	r := Summarize("broken", Tolerances{Tol: 0.15, Warn: 0.075}, []Comparison{
		{Point: "gone", Metric: "exec", Timing: 100, Rel: math.NaN(), Status: Fail},
		{Point: "zero", Metric: "exec", Analytic: 5, Rel: math.Inf(1), Status: Fail},
	})
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("report with non-finite divergence failed to encode: %v", err)
	}
	if !strings.Contains(string(data), `"rel": null`) {
		t.Fatalf("non-finite divergence not encoded as null:\n%s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Comparisons[0].Rel) {
		t.Fatalf("null rel did not read back as NaN: %+v", back.Comparisons[0])
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	r := Summarize("demo", Tolerances{Tol: 0.15, Warn: 0.075}, []Comparison{
		{Point: "p", Metric: "exec", Timing: 100, Analytic: 99, Rel: 0.01, Status: Pass},
	})
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "demo" || len(back.Comparisons) != 1 || back.Comparisons[0].Status != Pass {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// miniScenario is a two-point GEMM matrix small enough to simulate in
// milliseconds.
func miniScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "equiv-mini",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "gemm", N: scenario.Size{Quick: 64, Full: 64}},
		Axes: []scenario.Axis{
			{Name: "lanes", Values: []scenario.Value{4.0, 8.0}},
		},
	}
}

func TestRunEndToEnd(t *testing.T) {
	rep, err := Run(miniScenario(), scenario.Options{Jobs: 2}, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Comparisons) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(rep.Comparisons))
	}
	if !rep.OK() {
		t.Fatalf("mini matrix diverges beyond default tolerance: %+v", rep.Comparisons)
	}
	res := rep.Result()
	if len(res.Rows) != 2 {
		t.Fatalf("rendered rows = %d, want 2", len(res.Rows))
	}
}

func TestRunInjectedDivergenceFails(t *testing.T) {
	rep, err := Run(miniScenario(), scenario.Options{Jobs: 2}, Tolerances{Tol: 1e-9, Warn: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("vanishing tolerance must fail: model and simulation can never agree to 1e-9")
	}
}

func TestRunServedFromWarmCache(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := scenario.Options{Jobs: 2, Cache: cache}
	if _, err := Run(miniScenario(), opt, Tolerances{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := cache.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("cold audit: %d hits, %d misses", hits, misses)
	}
	if _, err := Run(miniScenario(), opt, Tolerances{}); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := cache.Stats(); hits != 2 {
		t.Fatalf("warm audit hit %d of 2 points", hits)
	}
}

func TestRunVitScenarioComparesSplit(t *testing.T) {
	sc := &scenario.Scenario{
		Name:     "equiv-vit-mini",
		Workload: scenario.Workload{Kind: "vit"},
		Axes: []scenario.Axis{
			{Name: "preset", Values: []scenario.Value{"pcie8gb"}},
			{Name: "model", Values: []scenario.Value{"ViT-Base"}},
		},
	}
	rep, err := Run(sc, scenario.Options{Jobs: 1}, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]bool{}
	for _, c := range rep.Comparisons {
		metrics[c.Metric] = true
	}
	for _, want := range []string{"exec", "gemm", "nongemm"} {
		if !metrics[want] {
			t.Fatalf("vit audit missing metric %q: %+v", want, rep.Comparisons)
		}
	}
	if !rep.OK() {
		t.Fatalf("ViT-Base under pcie8gb diverges beyond default tolerance: %+v", rep.Comparisons)
	}
}

func TestCompareClassifiesNoModelPoints(t *testing.T) {
	tol := Tolerances{Tol: 0.15, Warn: 0.075}
	timing := []Observation{
		obs(BackendTiming, "modeled", "exec", 100),
		obs(BackendTiming, "declined", "exec", 100),
	}
	an := []Observation{obs(BackendAnalytic, "modeled", "exec", 101)}
	comps := Compare(timing, an, map[string]bool{"declined": true}, tol)
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(comps))
	}
	if comps[0].Status != Pass {
		t.Fatalf("modeled point: %+v", comps[0])
	}
	if comps[1].Status != NoModel || !math.IsNaN(comps[1].Rel) {
		t.Fatalf("declined point must be nomodel with NaN rel: %+v", comps[1])
	}
	r := Summarize("nm", tol, comps)
	if r.Passed != 1 || r.NoModeled != 1 || r.Failed != 0 {
		t.Fatalf("counts: %+v", r)
	}
	if !r.OK() {
		t.Fatal("a declared model gap must not fail the audit")
	}
}

func TestSummarizeStillFailsUnknownMissingCounterparts(t *testing.T) {
	// Only declared nomodel points are excused; a genuinely missing
	// counterpart stays a conformance break.
	comps := Compare(
		[]Observation{obs(BackendTiming, "gone", "exec", 100)},
		nil, nil, Tolerances{Tol: 0.15, Warn: 0.075})
	r := Summarize("gone", Tolerances{Tol: 0.15, Warn: 0.075}, comps)
	if r.Failed != 1 || r.OK() {
		t.Fatalf("missing counterpart not failed: %+v", r)
	}
}

func TestRunMultiAccelScenarioIsNoModel(t *testing.T) {
	// A contended 2-accelerator GEMM point has no analytic counterpart;
	// the audit must classify it nomodel and still exit clean rather
	// than hard-failing (the PR-10 equiv bugfix).
	sc := &scenario.Scenario{
		Name:     "equiv-multiaccel",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "gemm", N: scenario.Size{Quick: 64, Full: 64}},
		Axes: []scenario.Axis{
			{Name: "accelerators", Values: []scenario.Value{1.0, 2.0}},
		},
	}
	rep, err := Run(sc, scenario.Options{Jobs: 2}, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("audit with declared nomodel points must stay OK: %+v", rep.Comparisons)
	}
	if rep.NoModeled != 1 || rep.Passed+rep.Warned != 1 {
		t.Fatalf("want 1 modeled + 1 nomodel: %+v", rep)
	}
	res := rep.Result()
	var sawDash bool
	for _, row := range res.Rows {
		if row[len(row)-1] == string(NoModel) && row[3] == "-" && row[4] == "-" {
			sawDash = true
		}
	}
	if !sawDash {
		t.Fatalf("nomodel row must render dashes for analytic/rel: %+v", res.Rows)
	}
}

func TestRunHomogeneousFarmUsesSerializationBound(t *testing.T) {
	// Homogeneous flat farms get the first-order shared-switch bound —
	// real comparisons, not nomodel rows.
	sc := &scenario.Scenario{
		Name:     "equiv-farm-homog",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "farm", N: scenario.Size{Quick: 64, Full: 64}},
		Axes: []scenario.Axis{
			{Name: "cluster", Values: []scenario.Value{
				[]any{map[string]any{"kind": "gemm", "n": 2.0}},
			}},
		},
	}
	rep, err := Run(sc, scenario.Options{Jobs: 1}, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoModeled != 0 {
		t.Fatalf("homogeneous farm must be modeled: %+v", rep.Comparisons)
	}
	if !rep.OK() {
		t.Fatalf("farm bound diverges beyond default tolerance: %+v", rep.Comparisons)
	}
}

func TestRunMixedFarmAndTenantsAreNoModel(t *testing.T) {
	for _, sc := range []*scenario.Scenario{
		{
			Name:     "equiv-farm-mixed",
			Base:     "pcie8gb",
			Workload: scenario.Workload{Kind: "farm", N: scenario.Size{Quick: 64, Full: 64}},
			Axes: []scenario.Axis{
				{Name: "cluster", Values: []scenario.Value{
					[]any{map[string]any{"kind": "gemm", "n": 1.0}, map[string]any{"kind": "lite", "n": 1.0}},
				}},
			},
		},
		{
			Name: "equiv-tenants",
			Base: "pcie8gb",
			Workload: scenario.Workload{
				Kind: "tenants",
				Tenants: []scenario.TenantSpec{
					{N: scenario.Size{Quick: 64, Full: 64}},
					{N: scenario.Size{Quick: 64, Full: 64}},
				},
			},
			Defaults: []scenario.Setting{{Axis: "accelerators", Value: 2.0}},
		},
	} {
		rep, err := Run(sc, scenario.Options{Jobs: 1}, Tolerances{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !rep.OK() || rep.NoModeled == 0 || rep.Passed+rep.Warned+rep.Failed != 0 {
			t.Fatalf("%s: want all-nomodel clean audit: %+v", sc.Name, rep)
		}
	}
}
