package equiv

// Concurrency contract: an equivalence audit and a plain sweep may
// share one result cache (and even one Progress reporter) from two
// goroutines — the pattern of a CI job auditing figures while another
// worker warms the cache. Run under -race (make race does) this
// exercises the Cache counter flush and Progress serialization fixes.

import (
	"io"
	"sync"
	"testing"

	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

func TestParallelEquivAndSweepShareCache(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := miniScenario()
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	points := sc.Points(runs)
	progress := sweep.NewProgress(io.Discard, "shared", 2*len(points), 2)

	var wg sync.WaitGroup
	fail := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		rep, err := Run(sc, scenario.Options{Jobs: 2, Cache: cache}, Tolerances{})
		if err != nil {
			fail <- err
			return
		}
		if len(rep.Comparisons) != len(points) {
			fail <- err
		}
		if err := cache.FlushCounters(); err != nil {
			fail <- err
		}
	}()
	go func() {
		defer wg.Done()
		eng := &sweep.Engine{Jobs: 2, Cache: cache, OnResult: progress.Observe}
		outs := eng.Run(points)
		if len(outs) != len(points) {
			fail <- nil
		}
		if err := cache.FlushCounters(); err != nil {
			fail <- err
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatalf("concurrent run failed: %v", err)
	}

	// Both flushes landed: persisted totals must cover every lookup
	// both goroutines made (2*len(points)), with no lost update.
	counters, err := cache.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if got := counters.Hits + counters.Misses; got != 2*len(points) {
		t.Fatalf("persisted lookups = %d, want %d (lost counter update)", got, 2*len(points))
	}
}
