//go:build unix

package sweep

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on path (creating the file
// if absent), blocking until the lock is granted. The returned unlock
// releases the lock and closes the descriptor. flock locks are held by
// the open file description, so they contend between goroutines of one
// process as well as between processes, and die with the holder — a
// crashed flusher never wedges the directory.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
