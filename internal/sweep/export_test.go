package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"accesys/internal/sim"
)

// openT opens a cache in a fresh temp dir with a fixed salt.
func openT(t *testing.T, salt string) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Salt = salt
	return c
}

func TestImportFromCopiesEntries(t *testing.T) {
	src := openT(t, "s")
	dst := openT(t, "s")
	src.Put("a", Outcome{Dur: 1})
	src.Put("b", Outcome{Dur: 2})

	st, err := dst.ImportFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 2 || st.Duplicates != 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 2 imported", st)
	}
	for fp, want := range map[string]sim.Tick{"a": 1, "b": 2} {
		out, ok := dst.Get(fp)
		if !ok || out.Dur != want {
			t.Fatalf("Get(%q) = %v, %v after import", fp, out, ok)
		}
	}
}

func TestImportFromSkipsIdenticalEntries(t *testing.T) {
	src := openT(t, "s")
	dst := openT(t, "s")
	src.Put("shared", Outcome{Dur: 7})
	dst.Put("shared", Outcome{Dur: 7})
	src.Put("only-src", Outcome{Dur: 9})

	st, err := dst.ImportFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 imported + 1 duplicate", st)
	}
}

func TestImportFromDetectsDivergentPayloads(t *testing.T) {
	// Same fingerprint, different outcomes: the determinism contract
	// broken somewhere. The import must refuse, not pick a winner.
	src := openT(t, "s")
	dst := openT(t, "s")
	src.Put("fp", Outcome{Dur: 1})
	dst.Put("fp", Outcome{Dur: 2})

	_, err := dst.ImportFrom(src)
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CollisionError", err)
	}
	if ce.SrcFingerprint != ce.DstFingerprint {
		t.Fatalf("collision between distinct fingerprints reported: %+v", ce)
	}
	// The destination entry must be untouched.
	if out, ok := dst.Get("fp"); !ok || out.Dur != 2 {
		t.Fatalf("destination entry clobbered: %v, %v", out, ok)
	}
}

func TestImportFromSkipsCorruptSourceEntries(t *testing.T) {
	src := openT(t, "s")
	dst := openT(t, "s")
	src.Put("good", Outcome{Dur: 1})
	// A well-named but unparseable entry.
	bad := filepath.Join(src.Dir(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := dst.ImportFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 1 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 imported + 1 corrupt", st)
	}
}

func TestImportFromOverwritesCorruptDestinationEntry(t *testing.T) {
	src := openT(t, "s")
	dst := openT(t, "s")
	src.Put("fp", Outcome{Dur: 5})
	// Find the entry's file name and corrupt the destination copy.
	des, err := os.ReadDir(src.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, de := range des {
		if isEntryName(de.Name()) {
			name = de.Name()
		}
	}
	if name == "" {
		t.Fatal("no entry written")
	}
	if err := os.WriteFile(filepath.Join(dst.Dir(), name), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := dst.ImportFrom(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 1 {
		t.Fatalf("stats = %+v, want the healthy copy imported", st)
	}
	if out, ok := dst.Get("fp"); !ok || out.Dur != 5 {
		t.Fatalf("Get after repair = %v, %v", out, ok)
	}
}

func TestAddCountersFoldsIntoPersistedTotals(t *testing.T) {
	c := openT(t, "")
	if err := c.AddCounters(Counters{Hits: 2, Misses: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCounters(Counters{Hits: 1, Errors: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if (got != Counters{Hits: 3, Misses: 3, Errors: 4}) {
		t.Fatalf("counters = %+v", got)
	}
}

// TestMergeCountersNotClobberedOnSharedEntries is the regression test
// for the merge counter-folding path: when source and destination
// caches share an entry (and both carry persisted counter history),
// folding the source's counters must ADD to the destination's
// persisted totals — a write that replaced them would silently lose
// the destination's history — and a later FlushCounters of pending
// in-memory counts must land on top of the merged totals, not over
// them.
func TestMergeCountersNotClobberedOnSharedEntries(t *testing.T) {
	src := openT(t, "s")
	dst := openT(t, "s")
	// Overlapping entries: "shared" lives in both caches.
	dst.Put("shared", Outcome{Dur: 1})
	dst.Put("dst-only", Outcome{Dur: 2})
	src.Put("shared", Outcome{Dur: 1})
	src.Put("src-only", Outcome{Dur: 3})

	// Both caches have persisted counter history.
	if err := dst.AddCounters(Counters{Hits: 5}); err != nil {
		t.Fatal(err)
	}
	if err := src.AddCounters(Counters{Hits: 3, Misses: 1}); err != nil {
		t.Fatal(err)
	}

	// Merge path: import entries, fold the source's persisted counters.
	if _, err := dst.ImportFrom(src); err != nil {
		t.Fatal(err)
	}
	sc, err := src.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AddCounters(sc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if (got != Counters{Hits: 8, Misses: 1}) {
		t.Fatalf("merged counters = %+v, want hits 8 + misses 1 (destination history clobbered?)", got)
	}

	// Pending in-memory counts flushed after the merge must add on top.
	if _, ok := dst.Get("shared"); !ok {
		t.Fatal("warm entry missing")
	}
	if err := dst.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	got, err = dst.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if (got != Counters{Hits: 9, Misses: 1}) {
		t.Fatalf("counters after flush = %+v, want hits 9 + misses 1", got)
	}
}
