package sweep

// In-flight deduplication: a Flight coalesces concurrent cold
// executions of the same point so engines sharing one warm cache —
// the serve daemon running several clients' overlapping manifests at
// once — pay for each unique simulation exactly once. The cache
// already dedupes across time (a later run warm-hits an earlier one's
// entry); the Flight dedupes across *concurrency*, the window where
// two engines both miss and would otherwise both simulate.

import "sync"

// flightCall is one in-flight execution. done closes when the leader
// finishes; out and panicked are only read after that.
type flightCall struct {
	done     chan struct{}
	out      Outcome
	panicked any
}

// Flight deduplicates concurrent executions by key (use the raw
// fingerprint's Digest). The zero value is ready; one Flight is meant
// to be shared by every engine working the same cache. It is safe for
// concurrent use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// Do executes fn once per key among concurrent callers: the first
// caller in (the leader) runs fn, everyone else arriving before it
// finishes blocks and adopts the leader's outcome. The boolean reports
// whether this caller led. Once a call completes its key is forgotten,
// so a later Do runs fn again — persistent memoisation is the cache's
// job, not the Flight's. A panicking fn panics in the leader and is
// re-raised in every waiting follower.
func (f *Flight) Do(key string, fn func() Outcome) (Outcome, bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.out, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	func() {
		defer func() {
			c.panicked = recover()
			f.mu.Lock()
			delete(f.calls, key)
			f.mu.Unlock()
			close(c.done)
		}()
		c.out = fn()
	}()
	if c.panicked != nil {
		panic(c.panicked)
	}
	return c.out, true
}

// Inflight reports how many keys are currently executing — a health
// metric for the serve daemon's stats endpoint.
func (f *Flight) Inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
