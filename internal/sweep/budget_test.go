package sweep

import (
	"strings"
	"testing"
	"time"
)

func TestParseBudget(t *testing.T) {
	b, err := ParseBudget("12")
	if err != nil || b.Points != 12 || b.Wall != 0 {
		t.Fatalf("ParseBudget(12) = %+v, %v", b, err)
	}
	b, err = ParseBudget("2m")
	if err != nil || b.Points != 0 || b.Wall != 2*time.Minute {
		t.Fatalf("ParseBudget(2m) = %+v, %v", b, err)
	}
	for _, s := range []string{"0", "-3", "0s", "-5m", "lots", ""} {
		if _, err := ParseBudget(s); err == nil {
			t.Errorf("ParseBudget(%q) accepted", s)
		}
	}
	if _, err := ParseBudget("-3"); !strings.Contains(err.Error(), "must be positive") {
		t.Errorf("ParseBudget(-3) error %v, want point-count complaint", err)
	}
}

func TestBudgetPoints(t *testing.T) {
	b := &Budget{Points: 2}
	if !b.Take(time.Second) || !b.Take(time.Second) {
		t.Fatal("budget refused admissions it had room for")
	}
	if b.Take(time.Second) {
		t.Fatal("budget admitted a third point against Points=2")
	}
	if !b.Exhausted() {
		t.Fatal("spent budget not exhausted")
	}
	pts, wall := b.Spent()
	if pts != 2 || wall != 2*time.Second {
		t.Fatalf("Spent() = %d, %v", pts, wall)
	}
}

// A wall budget admits while under the cap and charges the full
// prediction on admission, so the last admission may overshoot —
// predictions are estimates, and refusing would strand the budget's
// tail unspent.
func TestBudgetWallOvershootOnAdmit(t *testing.T) {
	b := &Budget{Wall: 3 * time.Second}
	if !b.Take(2 * time.Second) {
		t.Fatal("refused first admission")
	}
	if !b.Take(5 * time.Second) { // under cap when asked; charge overshoots
		t.Fatal("refused admission while under the wall cap")
	}
	if b.Take(time.Millisecond) {
		t.Fatal("admitted past an exhausted wall")
	}
	if _, wall := b.Spent(); wall != 7*time.Second {
		t.Fatalf("spent wall %v, want 7s", wall)
	}
}

func TestBudgetNilAndString(t *testing.T) {
	var b *Budget
	if !b.Take(time.Hour) || b.Exhausted() {
		t.Fatal("nil budget must admit everything")
	}
	if got := b.String(); got != "unlimited" {
		t.Fatalf("nil String() = %q", got)
	}
	if got := (&Budget{Points: 8}).String(); got != "8 points" {
		t.Fatalf("points String() = %q", got)
	}
	if got := (&Budget{Wall: time.Minute}).String(); !strings.Contains(got, "1m0s") {
		t.Fatalf("wall String() = %q", got)
	}
}
