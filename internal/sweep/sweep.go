// Package sweep is the design-space exploration engine: it fans
// independent simulation runs out over a worker pool, preserves
// deterministic result ordering regardless of completion order, and
// memoises completed runs in an on-disk cache keyed by a content hash
// of each run's configuration.
//
// Every simulated system is single-threaded and self-contained (one
// EventQueue, one stats registry), so independent runs parallelise
// trivially; the engine only guarantees that the slice it returns is
// ordered by declaration, never by completion.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"accesys/internal/sim"
)

// fingerprintVersion salts every fingerprint; bump it to invalidate
// all cached results when the encoding changes incompatibly.
const fingerprintVersion = "sweep/v1"

// Outcome is the recorded result of one sweep point: the primary
// simulated duration plus any named secondary metrics (extracted
// statistics). Outcomes must be plain data — they round-trip through
// the JSON result cache.
type Outcome struct {
	Dur    sim.Tick           `json:"dur"`
	Values map[string]float64 `json:"values,omitempty"`
}

// Value returns the named secondary metric, or 0 when absent.
func (o Outcome) Value(name string) float64 { return o.Values[name] }

// Tick returns the named secondary metric as a simulation time.
func (o Outcome) Tick(name string) sim.Tick { return sim.Tick(o.Values[name]) }

// Point is one run of a design-space sweep.
type Point struct {
	// Key labels the point in progress output; it should be unique
	// within one sweep.
	Key string
	// Fingerprint is the content hash material identifying the run's
	// full configuration; equal fingerprints mean interchangeable
	// outcomes. Build it with Fingerprint. Empty disables caching for
	// this point.
	Fingerprint string
	// Run executes the simulation and returns its outcome. It must be
	// self-contained: engine workers invoke Run concurrently.
	Run func() Outcome
}

// Result reports one completed point to the progress callback.
type Result struct {
	// Index is the point's position in the declared sweep.
	Index int
	// Key echoes the point's label.
	Key string
	// Outcome is the run's result.
	Outcome Outcome
	// Cached reports whether the outcome came from the result cache.
	Cached bool
	// Shared reports that the outcome was adopted from a concurrent
	// execution of the same point (in-flight dedup) rather than run or
	// read from the cache here.
	Shared bool
	// Wall is the host-side execution time (zero for cache hits and
	// shared outcomes).
	Wall time.Duration
}

// Engine executes sweeps. The zero value runs with one worker per CPU
// and no cache.
type Engine struct {
	// Jobs bounds the worker pool; <= 0 means runtime.NumCPU().
	Jobs int
	// Cache memoises outcomes across processes; nil disables.
	Cache *Cache
	// OnResult, when non-nil, observes each completed point. Calls are
	// serialised but arrive in completion order, not declaration order.
	OnResult func(Result)
	// Profile, when non-nil, records each cold point's measured wall
	// time (EWMA keyed by fingerprint digest) — the weighted shard
	// partitioner's input. Flush it after the run to persist.
	Profile *Profile
	// Flight, when non-nil, coalesces concurrent executions of
	// identical points (keyed by fingerprint digest) across every
	// engine sharing it: one engine simulates, the others adopt the
	// outcome and report it with Result.Shared set. Cache lookups move
	// inside the flight, so for deduplicated points hits+misses count
	// leaders only.
	Flight *Flight
	// Clock supplies the wall-clock readings behind Result.Wall — the
	// sole time source on the ETA path, injectable so progress output
	// is deterministic under test. Nil means time.Now.
	Clock func() time.Time

	mu sync.Mutex
}

// now reads the engine's clock.
func (e *Engine) now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

func (e *Engine) jobs() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return runtime.NumCPU()
}

// Workers returns the pool size the engine would use for a sweep of n
// points — what an ETA estimate should divide by.
func (e *Engine) Workers(n int) int {
	w := e.jobs()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (e *Engine) report(r Result) {
	if e.OnResult == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.OnResult(r)
}

// runPoint executes (or recalls, or adopts) one point, wrapping any
// panic with the point's key so every execution path reports failures
// uniformly.
func (e *Engine) runPoint(i int, p Point) Outcome {
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("sweep: point %q panicked: %v", p.Key, r))
		}
	}()
	if e.Flight == nil || p.Fingerprint == "" {
		res := e.execute(i, p, "")
		e.report(res)
		return res.Outcome
	}
	// Dedup path: the whole lookup-or-simulate cycle runs inside the
	// flight, so a concurrent engine that misses on the same point
	// waits for this one instead of simulating it again — and a leader
	// that starts just after a previous flight for the key landed
	// still sees that result as an ordinary cache hit. The digest is
	// hashed once here and shared with the profile observation.
	var res Result
	dig := Digest(p.Fingerprint)
	out, led := e.Flight.Do(dig, func() Outcome {
		res = e.execute(i, p, dig)
		return res.Outcome
	})
	if !led {
		res = Result{Index: i, Key: p.Key, Outcome: out, Shared: true}
	}
	e.report(res)
	return out
}

// execute runs or recalls one point without reporting — runPoint picks
// the Result it publishes. dig, when non-empty, is the point's
// already-computed fingerprint digest (memoized by runPoint so the
// flight and the profile share one hash).
func (e *Engine) execute(i int, p Point, dig string) Result {
	var ref Ref
	if e.Cache != nil && p.Fingerprint != "" {
		ref = e.Cache.Ref(p.Fingerprint)
		if out, ok := e.Cache.GetRef(ref); ok {
			return Result{Index: i, Key: p.Key, Outcome: out, Cached: true}
		}
	}
	start := e.now()
	out := p.Run()
	wall := e.now().Sub(start)
	if e.Cache != nil && p.Fingerprint != "" {
		e.Cache.PutRef(ref, out)
	}
	if e.Profile != nil && p.Fingerprint != "" {
		if dig == "" {
			dig = Digest(p.Fingerprint)
		}
		e.Profile.ObserveDigest(dig, wall)
	}
	return Result{Index: i, Key: p.Key, Outcome: out, Wall: wall}
}

// Run executes every point and returns their outcomes in declaration
// order. With Jobs > 1 points run concurrently; a panicking point is
// re-raised on the calling goroutine, wrapped with the point's key
// (only the first of several concurrent failures is reported).
func (e *Engine) Run(points []Point) []Outcome {
	outs := make([]Outcome, len(points))
	workers := e.jobs()
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i, p := range points {
			outs[i] = e.runPoint(i, p)
		}
		return outs
	}

	idx := make(chan int)
	fail := make(chan any, len(points))
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if stopped.Load() {
					continue // fail-fast: drain without running
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stopped.Store(true)
							fail <- r // already key-wrapped by runPoint
						}
					}()
					outs[i] = e.runPoint(i, points[i])
				}()
			}
		}()
	}
	for i := range points {
		if stopped.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	close(fail)
	if f, ok := <-fail; ok {
		panic(f)
	}
	return outs
}

// Fingerprint canonically encodes the given parts (JSON, newline
// separated, version salted) into cache-key material. Parts must be
// JSON-encodable plain data — configuration structs, sizes, labels.
// It panics on unencodable values, but note that JSON encodes
// interface-typed fields by content only: two implementations that
// marshal alike (e.g. both to "{}") would alias, so callers holding
// interface-valued configuration must add a type tag part
// (fmt.Sprintf("%T", v)) alongside the struct.
func Fingerprint(parts ...any) string {
	fb := fpBufPool.Get().(*fpBuf)
	fb.buf.Reset()
	fb.buf.WriteString(fingerprintVersion)
	for _, p := range parts {
		fb.buf.WriteByte('\n')
		// Encoding straight into the pooled buffer avoids the
		// per-part []byte of json.Marshal; Encode appends a newline
		// the format does not want, so trim it back off.
		if err := fb.enc.Encode(p); err != nil {
			fpBufPool.Put(fb)
			panic(fmt.Sprintf("sweep: unencodable fingerprint part %T: %v", p, err))
		}
		fb.buf.Truncate(fb.buf.Len() - 1)
	}
	s := fb.buf.String()
	fpBufPool.Put(fb)
	return s
}

// fpBuf is a reusable fingerprint encoding buffer; the encoder is
// bound to the buffer once so each Fingerprint call costs only the
// final string copy.
type fpBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var fpBufPool = sync.Pool{New: func() any {
	fb := &fpBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}}
