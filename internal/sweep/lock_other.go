//go:build !unix

package sweep

import "sync"

// fallbackLocks serialises lockFile holders within this process on
// platforms without flock. Cross-process flushes on such platforms keep
// the pre-lock behaviour: a racing writer can lose an update, which
// costs schedule quality, never correctness.
var fallbackLocks sync.Map // path -> *sync.Mutex

func lockFile(path string) (func(), error) {
	mu, _ := fallbackLocks.LoadOrStore(path, &sync.Mutex{})
	m := mu.(*sync.Mutex)
	m.Lock()
	return m.Unlock, nil
}
