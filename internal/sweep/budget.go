package sweep

// Budgeted execution: explore's stopping rule. A Budget caps how much
// exact-timing simulation a search may buy, either by point count or
// by profile-predicted wall time, and is charged *before* each
// promotion runs (prediction, not measurement — the decision has to
// be made up front).
//
// Determinism note: a point budget spends the same way regardless of
// cache or profile state, so searches under it are deterministic per
// (manifest, seed, budget). A wall budget charges predictions read
// from the profile, which warms as runs accumulate — two runs with
// different profile states may admit different prefixes. Tests and CI
// pin point budgets for that reason.

import (
	"fmt"
	"strconv"
	"time"
)

// Budget is a consumable allowance of timing-simulation promotions.
// Zero fields are unlimited in that dimension. Not safe for
// concurrent use — charge it from the search loop, not from engine
// workers.
type Budget struct {
	// Points caps promotions by count.
	Points int
	// Wall caps promotions by cumulative predicted wall time.
	Wall time.Duration

	spentPoints int
	spentWall   time.Duration
}

// ParseBudget reads the manifest/flag form: a bare integer is a point
// count, anything else must be a positive Go duration ("90s", "2m")
// capping predicted wall time.
func ParseBudget(s string) (Budget, error) {
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return Budget{}, fmt.Errorf("budget %q: point count must be positive", s)
		}
		return Budget{Points: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return Budget{}, fmt.Errorf("budget %q: want a point count or a duration", s)
	}
	if d <= 0 {
		return Budget{}, fmt.Errorf("budget %q: duration must be positive", s)
	}
	return Budget{Wall: d}, nil
}

// Take charges one promotion with the given predicted wall. It
// returns false — charging nothing — once the budget is exhausted: a
// point budget refuses after Points promotions; a wall budget refuses
// once the charged predictions have reached Wall (the admitting
// charge may overshoot, so the first promotion is always affordable).
// A nil budget admits everything.
func (b *Budget) Take(predicted time.Duration) bool {
	if b == nil {
		return true
	}
	if b.Points > 0 && b.spentPoints >= b.Points {
		return false
	}
	if b.Wall > 0 && b.spentWall >= b.Wall {
		return false
	}
	b.spentPoints++
	if predicted > 0 {
		b.spentWall += predicted
	}
	return true
}

// Exhausted reports whether the next Take would refuse.
func (b *Budget) Exhausted() bool {
	if b == nil {
		return false
	}
	return (b.Points > 0 && b.spentPoints >= b.Points) ||
		(b.Wall > 0 && b.spentWall >= b.Wall)
}

// Spent reports what has been charged so far.
func (b *Budget) Spent() (points int, predictedWall time.Duration) {
	if b == nil {
		return 0, 0
	}
	return b.spentPoints, b.spentWall
}

// String renders the limit for logs and traces.
func (b *Budget) String() string {
	switch {
	case b == nil:
		return "unlimited"
	case b.Points > 0:
		return fmt.Sprintf("%d points", b.Points)
	case b.Wall > 0:
		return fmt.Sprintf("%v predicted wall", b.Wall)
	}
	return "unlimited"
}
