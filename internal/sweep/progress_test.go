package sweep

import (
	"strings"
	"testing"
	"time"
)

func TestProgressCountsAndETA(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, "figX", 3, 1)

	p.Observe(Result{Index: 0, Key: "a", Outcome: Outcome{Dur: 1000}, Wall: 2 * time.Second})
	line := sb.String()
	if !strings.Contains(line, "figX: [1/3] a ->") {
		t.Fatalf("missing count prefix: %q", line)
	}
	if !strings.Contains(line, "2.0s wall") {
		t.Fatalf("missing wall time: %q", line)
	}
	// One measured point at 2 s, two remaining, one worker: ETA 4 s.
	if !strings.Contains(line, "ETA 4s") {
		t.Fatalf("missing ETA: %q", line)
	}

	sb.Reset()
	p.Observe(Result{Index: 1, Key: "b", Outcome: Outcome{Dur: 1000}, Cached: true})
	line = sb.String()
	if !strings.Contains(line, "[2/3]") || !strings.Contains(line, "(cached)") {
		t.Fatalf("cached line wrong: %q", line)
	}
	if strings.Contains(line, "ETA") {
		t.Fatalf("cached line should not carry an ETA: %q", line)
	}

	// The cache hit must not dilute the estimate: one point left,
	// mean still 2 s.
	sb.Reset()
	p.Observe(Result{Index: 2, Key: "c", Outcome: Outcome{Dur: 1000}, Wall: 2 * time.Second})
	line = sb.String()
	if !strings.Contains(line, "[3/3]") {
		t.Fatalf("final count wrong: %q", line)
	}
	if strings.Contains(line, "ETA") {
		t.Fatalf("final line should not carry an ETA: %q", line)
	}
}

func TestProgressAllCachedHasNoETA(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, "warm", 2, 4)
	p.Observe(Result{Key: "a", Cached: true})
	p.Observe(Result{Key: "b", Cached: true})
	if strings.Contains(sb.String(), "ETA") {
		t.Fatalf("all-cached run should never print an ETA:\n%s", sb.String())
	}
}

func TestProgressDividesByWorkers(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, "par", 5, 2)
	p.Observe(Result{Key: "a", Wall: 4 * time.Second})
	// Mean 4 s, four remaining, two workers: ETA 8 s.
	if !strings.Contains(sb.String(), "ETA 8s") {
		t.Fatalf("worker-adjusted ETA wrong: %q", sb.String())
	}
}

func TestEngineWorkers(t *testing.T) {
	e := &Engine{Jobs: 4}
	if got := e.Workers(10); got != 4 {
		t.Fatalf("Workers(10) = %d, want 4", got)
	}
	if got := e.Workers(2); got != 2 {
		t.Fatalf("Workers(2) = %d, want 2", got)
	}
	if got := e.Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
}

// TestProgressETADeterministicWithInjectedClock pins the exact
// progress output of a full engine run under a scripted clock: the
// engine's Clock field is the only time source on the ETA path, so the
// lines — wall notes and ETAs included — must be byte-stable.
func TestProgressETADeterministicWithInjectedClock(t *testing.T) {
	var sb strings.Builder
	base := time.Unix(1000, 0)
	var calls int
	eng := &Engine{
		Jobs: 1,
		// Every reading advances 1.5s; runPoint reads twice per cold
		// point, so each point measures a 1.5s wall.
		Clock: func() time.Time { calls++; return base.Add(time.Duration(calls) * 1500 * time.Millisecond) },
	}
	points := []Point{
		{Key: "a", Run: func() Outcome { return Outcome{Dur: 1000000} }},
		{Key: "b", Run: func() Outcome { return Outcome{Dur: 1000000} }},
		{Key: "c", Run: func() Outcome { return Outcome{Dur: 1000000} }},
	}
	eng.OnResult = NewProgress(&sb, "clk", len(points), eng.Workers(len(points))).Observe
	eng.Run(points)
	// Mean wall is always 1.5s with one worker: [1/3] leaves 2 points
	// (ETA 3s), [2/3] leaves 1 (1.5s rounds to 2s), [3/3] leaves none.
	want := "clk: [1/3] a -> 1.000us (1.5s wall, ETA 3s)\n" +
		"clk: [2/3] b -> 1.000us (1.5s wall, ETA 2s)\n" +
		"clk: [3/3] c -> 1.000us (1.5s wall)\n"
	if sb.String() != want {
		t.Fatalf("progress output not deterministic:\n--- got\n%s--- want\n%s", sb.String(), want)
	}
}

// TestEngineProgressIntegration drives Progress through a real engine
// run: every point reports, counts reach n/n.
func TestEngineProgressIntegration(t *testing.T) {
	var sb strings.Builder
	points := make([]Point, 4)
	for i := range points {
		points[i] = Point{Key: string(rune('a' + i)), Run: func() Outcome { return Outcome{Dur: 1} }}
	}
	eng := &Engine{Jobs: 2}
	eng.OnResult = NewProgress(&sb, "int", len(points), eng.Workers(len(points))).Observe
	eng.Run(points)
	out := sb.String()
	if strings.Count(out, "\n") != len(points) {
		t.Fatalf("want %d progress lines, got:\n%s", len(points), out)
	}
	if !strings.Contains(out, "[4/4]") {
		t.Fatalf("missing final count:\n%s", out)
	}
}
