package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Cache is the on-disk result store. Entries are JSON files named by
// the SHA-256 of their fingerprint; each records the full fingerprint
// so hash collisions and stale or corrupt files read as misses rather
// than wrong results. A Cache is safe for concurrent use by engine
// workers and by multiple processes sharing one directory (writes are
// staged to a temp file and renamed into place).
type Cache struct {
	dir string

	// Salt, when non-empty, is mixed into every entry key so results
	// from a different simulator build read as misses. Set it before
	// first use — BinaryFingerprint gives a ready-made value.
	Salt string

	// Clock supplies the wall-clock readings GC ages entries against,
	// injectable so a daemon's periodic GC is testable without sleeps or
	// mtime rewriting. Nil means time.Now.
	Clock func() time.Time

	mu     sync.Mutex
	hits   int
	misses int
	errors int

	// flushMu serialises whole FlushCounters read-modify-write cycles,
	// so two engines sharing one Cache from different goroutines can
	// both flush without losing each other's counts.
	flushMu sync.Mutex
}

// entry is the on-disk record format.
type entry struct {
	Fingerprint string  `json:"fingerprint"`
	Outcome     Outcome `json:"outcome"`
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// OpenSalted opens the cache at dir salted with the running binary's
// fingerprint — the standard configuration for tools: rebuilding the
// simulator from different code invalidates prior entries instead of
// silently serving stale results. It fails if the binary cannot be
// fingerprinted, because an unsalted cache would lose that guarantee.
func OpenSalted(dir string) (*Cache, error) {
	cache, err := Open(dir)
	if err != nil {
		return nil, err
	}
	salt, err := BinaryFingerprint()
	if err != nil {
		return nil, err
	}
	cache.Salt = salt
	return cache, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// now reads the cache's clock.
func (c *Cache) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// key is the salted fingerprint entries are stored and compared
// under; with a build-derived Salt, entries written by a different
// simulator binary can never match.
func (c *Cache) key(fingerprint string) string {
	if c.Salt == "" {
		return fingerprint
	}
	return c.Salt + "\x00" + fingerprint
}

func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Ref is a precomputed cache reference: the salted key and the entry
// path for one fingerprint, hashed once and reusable across GetRef and
// PutRef (the engine's miss path would otherwise hash twice). Compute
// it after Salt is set; a Ref does not track later Salt changes.
type Ref struct {
	key  string
	path string
}

// Ref precomputes the cache reference for a fingerprint.
func (c *Cache) Ref(fingerprint string) Ref {
	key := c.key(fingerprint)
	return Ref{key: key, path: c.path(key)}
}

// Get returns the cached outcome for the fingerprint. Unreadable,
// malformed, or mismatching entries count as misses; a mismatching or
// malformed file additionally counts as an error and will be
// overwritten by the next Put.
func (c *Cache) Get(fingerprint string) (Outcome, bool) {
	return c.GetRef(c.Ref(fingerprint))
}

// GetRef is Get for an already-computed reference.
func (c *Cache) GetRef(r Ref) (Outcome, bool) {
	data, err := os.ReadFile(r.path)
	if err != nil {
		c.count(&c.misses)
		return Outcome{}, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Fingerprint != r.key {
		c.count(&c.errors)
		c.count(&c.misses)
		return Outcome{}, false
	}
	c.count(&c.hits)
	return e.Outcome, true
}

// Put stores the outcome under the fingerprint. Failures are recorded
// in the error counter but otherwise ignored: a broken cache must
// never break the sweep.
func (c *Cache) Put(fingerprint string, out Outcome) {
	c.PutRef(c.Ref(fingerprint), out)
}

// PutRef is Put for an already-computed reference.
func (c *Cache) PutRef(r Ref, out Outcome) {
	data, err := json.Marshal(entry{Fingerprint: r.key, Outcome: out})
	if err != nil {
		c.count(&c.errors)
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		c.count(&c.errors)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.count(&c.errors)
		return
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		os.Remove(tmp.Name())
		c.count(&c.errors)
	}
}

func (c *Cache) count(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// Stats reports hit, miss, and error counts since Open.
func (c *Cache) Stats() (hits, misses, errors int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.errors
}

// BinaryFingerprint hashes the running executable, giving a cache
// salt that changes whenever the simulator is rebuilt from different
// code — cached results can then never outlive the build that
// produced them.
func BinaryFingerprint() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
