package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints one line per completed point with a completion
// count and an ETA derived from the wall times the engine measures:
// remaining points x mean measured wall time, divided by the worker
// count. Cache hits complete in ~zero time, so they advance the count
// without skewing the estimate.
//
// A single Engine already serialises its OnResult callbacks, but
// nothing stops two engines (a sweep and an equivalence audit sharing
// one cache, say) from observing into the same Progress from two
// goroutines, so Observe takes its own lock.
type Progress struct {
	w       io.Writer
	label   string
	total   int
	workers int

	mu       sync.Mutex
	done     int
	measured int
	wall     time.Duration
}

// NewProgress reports on a sweep of total points executed by workers
// workers, prefixing every line with label.
func NewProgress(w io.Writer, label string, total, workers int) *Progress {
	if workers < 1 {
		workers = 1
	}
	return &Progress{w: w, label: label, total: total, workers: workers}
}

// Observe records one completed point and prints its progress line.
func (p *Progress) Observe(r Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	detail := " (cached)"
	switch {
	case r.Cached:
	case r.Shared:
		// Adopted from a concurrent execution: advances the count like
		// a cache hit, and like one must not skew the wall estimate.
		detail = " (shared)"
	default:
		p.measured++
		p.wall += r.Wall
		detail = fmt.Sprintf(" (%.1fs wall%s)", r.Wall.Seconds(), p.etaNote())
	}
	width := len(fmt.Sprintf("%d", p.total))
	fmt.Fprintf(p.w, "%s: [%*d/%d] %s -> %v%s\n",
		p.label, width, p.done, p.total, r.Key, r.Outcome.Dur, detail)
}

// etaNote estimates time to completion once at least one point has
// been measured; with nothing measured yet (or nothing left) it
// contributes nothing.
func (p *Progress) etaNote() string {
	remaining := p.total - p.done
	if p.measured == 0 || remaining == 0 {
		return ""
	}
	mean := p.wall / time.Duration(p.measured)
	eta := mean * time.Duration(remaining) / time.Duration(p.workers)
	return fmt.Sprintf(", ETA %v", eta.Round(time.Second))
}
