package sweep

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accesys/internal/sim"
)

func TestFlightCoalescesConcurrentCallers(t *testing.T) {
	var f Flight
	var runs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	leaderDone := make(chan Outcome, 1)
	go func() {
		out, led := f.Do("k", func() Outcome {
			close(started)
			runs.Add(1)
			<-release
			return Outcome{Dur: 42}
		})
		if !led {
			t.Error("first caller did not lead")
		}
		leaderDone <- out
	}()
	<-started

	const followers = 8
	var wg sync.WaitGroup
	var calling sync.WaitGroup
	outs := make([]Outcome, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		calling.Add(1)
		go func(i int) {
			defer wg.Done()
			calling.Done()
			out, led := f.Do("k", func() Outcome {
				runs.Add(1)
				return Outcome{Dur: 9999}
			})
			if led {
				t.Error("follower led while the leader was in flight")
			}
			outs[i] = out
		}(i)
	}
	// The leader stays blocked on release until every follower is at
	// (or past) its Do call, so all of them join the in-flight call.
	calling.Wait()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if out := <-leaderDone; out.Dur != 42 {
		t.Fatalf("leader outcome = %v", out.Dur)
	}
	for i, out := range outs {
		if out.Dur != 42 {
			t.Fatalf("follower %d outcome = %v, want 42", i, out.Dur)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if f.Inflight() != 0 {
		t.Fatal("flight still tracks a completed call")
	}
}

func TestFlightForgetsCompletedCalls(t *testing.T) {
	var f Flight
	for i := 0; i < 3; i++ {
		out, led := f.Do("k", func() Outcome { return Outcome{Dur: 7} })
		if !led || out.Dur != 7 {
			t.Fatalf("sequential call %d: led=%v out=%v", i, led, out.Dur)
		}
	}
}

func TestFlightDistinctKeysRunConcurrently(t *testing.T) {
	var f Flight
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every key waits on the same gate: if distinct keys
			// serialised, this would deadlock.
			f.Do(fmt.Sprintf("k%d", i), func() Outcome {
				if i == 3 {
					close(gate)
				}
				<-gate
				return Outcome{}
			})
		}(i)
	}
	wg.Wait()
}

func TestFlightPanicReachesLeader(t *testing.T) {
	var f Flight
	defer func() {
		if r := recover(); fmt.Sprint(r) != "boom" {
			t.Fatalf("leader recovered %v, want boom", r)
		}
		if f.Inflight() != 0 {
			t.Error("panicked call still tracked")
		}
	}()
	f.Do("k", func() Outcome { panic("boom") })
}

func TestFlightPanicReachesFollowers(t *testing.T) {
	// A follower that arrives after the leader's call completes leads a
	// fresh call instead of adopting the panic, so retry the scenario
	// until the follower genuinely followed.
	for attempt := 0; attempt < 100; attempt++ {
		var f Flight
		release := make(chan struct{})
		started := make(chan struct{})
		go func() {
			defer func() { recover() }()
			f.Do("k", func() Outcome {
				close(started)
				<-release
				panic("boom")
			})
		}()
		<-started
		type outcome struct {
			led       bool
			recovered any
		}
		follower := make(chan outcome, 1)
		go func() {
			var o outcome
			defer func() { o.recovered = recover(); follower <- o }()
			_, o.led = f.Do("k", func() Outcome { return Outcome{} })
		}()
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		close(release)
		o := <-follower
		if o.led {
			continue // follower raced in too late; try again
		}
		if fmt.Sprint(o.recovered) != "boom" {
			t.Fatalf("follower recovered %v, want boom", o.recovered)
		}
		return
	}
	t.Fatal("follower never overlapped the leader in 100 attempts")
}

// TestEnginesSharingFlightSimulateOnce is the dedup contract the serve
// daemon rests on: two engines over one cache and one flight, running
// overlapping point sets concurrently, cold-simulate each unique
// fingerprint exactly once — and the cache misses count leaders only.
func TestEnginesSharingFlightSimulateOnce(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var flight Flight
	var sims atomic.Int32
	points := func(n int) []Point {
		ps := make([]Point, n)
		for i := range ps {
			i := i
			ps[i] = Point{
				Key:         fmt.Sprintf("p%d", i),
				Fingerprint: Fingerprint("flight-shared", i),
				Run: func() Outcome {
					sims.Add(1)
					time.Sleep(time.Millisecond) // widen the overlap window
					return Outcome{Dur: sim.Tick(1000 + i)}
				},
			}
		}
		return ps
	}

	const unique = 16
	var shared, cold atomic.Int32
	count := func(r Result) {
		switch {
		case r.Shared:
			shared.Add(1)
		case !r.Cached:
			cold.Add(1)
		}
	}
	var wg sync.WaitGroup
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := &Engine{Jobs: 4, Cache: cache, Flight: &flight, OnResult: count}
			outs := eng.Run(points(unique))
			for i, out := range outs {
				if out.Dur != sim.Tick(1000+i) {
					t.Errorf("point %d outcome = %v", i, out.Dur)
				}
			}
		}()
	}
	wg.Wait()

	if n := sims.Load(); n != unique {
		t.Fatalf("simulated %d times, want %d (in-flight dedup lost)", n, unique)
	}
	if n := cold.Load(); n != unique {
		t.Fatalf("cold results = %d, want %d", n, unique)
	}
	hits, misses, errors := cache.Stats()
	if misses != unique || errors != 0 {
		t.Fatalf("cache stats: %d hits, %d misses, %d errors; want exactly %d misses", hits, misses, errors, unique)
	}
	// Every non-leader completion was either shared (overlapped in
	// flight) or a warm hit (arrived after the leader's Put).
	if got := int(shared.Load()) + hits; got != unique {
		t.Fatalf("shared (%d) + hits (%d) = %d, want %d", shared.Load(), hits, got, unique)
	}
}

// TestEngineFlightPanicKeyWrapped pins that a panic shared through the
// flight still surfaces wrapped with a point key.
func TestEngineFlightPanicKeyWrapped(t *testing.T) {
	var flight Flight
	eng := &Engine{Jobs: 1, Flight: &flight}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), `point "bad"`) {
			t.Fatalf("panic = %v, want point key wrap", r)
		}
	}()
	eng.Run([]Point{{Key: "bad", Fingerprint: "fp-bad", Run: func() Outcome { panic("boom") }}})
}

// TestEnginesSharingFlightLeaderPanicFailsFollowers is the satellite
// audit of the serve daemon's failure path: when two engines sharing
// one flight submit an overlapping point concurrently and the
// *leader's* simulation panics, the follower must observe the failure
// — re-raising the leader's panic key-wrapped — never hang on the
// done channel and never adopt a zero Outcome as a real result. The
// overlap is raced under -race; attempts where both engines led (no
// overlap) retry until a genuine follower adopted the panic.
func TestEnginesSharingFlightLeaderPanicFailsFollowers(t *testing.T) {
	for attempt := 0; attempt < 100; attempt++ {
		cache := openT(t, "s")
		var flight Flight
		var runs atomic.Int32
		var startOnce sync.Once
		started := make(chan struct{})
		release := make(chan struct{})
		point := Point{
			Key:         "overlap",
			Fingerprint: "fp-overlap-panic",
			Run: func() Outcome {
				runs.Add(1)
				startOnce.Do(func() { close(started) })
				<-release
				panic("simulation blew up")
			},
		}

		type engineEnd struct {
			recovered any
			returned  bool
		}
		ends := make(chan engineEnd, 2)
		launch := func() {
			go func() {
				var e engineEnd
				defer func() { e.recovered = recover(); ends <- e }()
				eng := &Engine{Jobs: 2, Cache: cache, Flight: &flight}
				eng.Run([]Point{point})
				e.returned = true
			}()
		}
		launch()
		<-started // the leader is inside its simulation
		launch()  // the second engine overlaps (or races in late and leads)
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		close(release)

		timeout := time.After(30 * time.Second)
		var got [2]engineEnd
		for i := range got {
			select {
			case got[i] = <-ends:
			case <-timeout:
				t.Fatal("an engine hung after the leader's panic — follower never unblocked")
			}
		}
		for i, e := range got {
			if e.returned {
				t.Fatalf("engine %d returned normally from a panicked point (zero Outcome adopted?)", i)
			}
			if !strings.Contains(fmt.Sprint(e.recovered), `point "overlap"`) {
				t.Fatalf("engine %d recovered %v, want the key-wrapped leader panic", i, e.recovered)
			}
		}
		if runs.Load() == 1 {
			return // exactly one simulation: the other engine followed and adopted the panic
		}
		// Both engines led their own call (the second arrived after the
		// first completed): the follower path was not exercised; retry.
	}
	t.Fatal("engines never overlapped on the panicking point in 100 attempts")
}
