package sweep

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func fillCache(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c.Put(Fingerprint("gc", i), Outcome{Dur: 1})
	}
}

func TestUsageCountsOnlyEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 3)
	// Non-entry files in the directory must not count.
	if err := os.WriteFile(filepath.Join(c.Dir(), countersName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "put-zz.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, bytes, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
	if bytes == 0 {
		t.Fatal("usage bytes should be nonzero")
	}
}

func TestGCByCountEvictsOldest(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 5)
	// Backdate the first two entries so mtime ordering is unambiguous.
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 2; i++ {
		path := c.path(c.key(Fingerprint("gc", i)))
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	res, err := c.GC(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 5 || res.Evicted != 2 || res.EvictedBytes == 0 {
		t.Fatalf("gc result = %+v, want scanned 5, evicted 2", res)
	}
	// The backdated entries are gone; the newest three survive.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(Fingerprint("gc", i)); ok {
			t.Fatalf("entry %d should be evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(Fingerprint("gc", i)); !ok {
			t.Fatalf("entry %d should survive", i)
		}
	}
}

func TestGCByAge(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 3)
	old := time.Now().Add(-48 * time.Hour)
	path := c.path(c.key(Fingerprint("gc", 0)))
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	res, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", res.Evicted)
	}
	if entries, _, _ := c.Usage(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
}

func TestGCRemovesStaleTemps(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(c.Dir(), "put-stale.tmp")
	fresh := filepath.Join(c.Dir(), "put-fresh.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * gcTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	res, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Temps != 1 {
		t.Fatalf("temps removed = %d, want 1", res.Temps)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp (possibly a live writer's) must survive")
	}
}

func TestGCUnboundedKeepsEverything(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 4)
	res, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 0 || res.Scanned != 4 {
		t.Fatalf("unbounded gc evicted %d of %d", res.Evicted, res.Scanned)
	}
}

func TestCountersFlushAccumulates(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put(Fingerprint("x"), Outcome{Dur: 1})
	c.Get(Fingerprint("x")) // hit
	c.Get(Fingerprint("y")) // miss
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	// Flush resets the in-memory counts so a second flush adds nothing.
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	tot, err := c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 1 || tot.Misses != 1 || tot.Errors != 0 {
		t.Fatalf("counters = %+v, want 1 hit 1 miss", tot)
	}

	// A second process sharing the directory folds its counts in.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	c2.Get(Fingerprint("x"))
	if err := c2.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	tot, err = c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 2 {
		t.Fatalf("cumulative hits = %d, want 2", tot.Hits)
	}
}

func TestCountersSurviveGC(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 2)
	c.Get(Fingerprint("gc", 0))
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(0, 1); err != nil {
		t.Fatal(err)
	}
	tot, err := c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 1 {
		t.Fatalf("counters lost by gc: %+v", tot)
	}
}
