package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accesys/internal/sim"
)

func fillCache(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c.Put(Fingerprint("gc", i), Outcome{Dur: 1})
	}
}

func TestUsageCountsOnlyEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 3)
	// Non-entry files in the directory must not count.
	if err := os.WriteFile(filepath.Join(c.Dir(), countersName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "put-zz.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, bytes, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
	if bytes == 0 {
		t.Fatal("usage bytes should be nonzero")
	}
}

func TestGCByCountEvictsOldest(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 5)
	// Backdate the first two entries so mtime ordering is unambiguous.
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 2; i++ {
		path := c.path(c.key(Fingerprint("gc", i)))
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	res, err := c.GC(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 5 || res.Evicted != 2 || res.EvictedBytes == 0 {
		t.Fatalf("gc result = %+v, want scanned 5, evicted 2", res)
	}
	// The backdated entries are gone; the newest three survive.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(Fingerprint("gc", i)); ok {
			t.Fatalf("entry %d should be evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(Fingerprint("gc", i)); !ok {
			t.Fatalf("entry %d should survive", i)
		}
	}
}

// gcBase is the fixed epoch the fake-clock GC tests pin entry mtimes
// and the cache Clock against, so ages are exact and independent of
// when the test runs.
var gcBase = time.Unix(1_700_000_000, 0)

func TestGCByAge(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 3)
	// Pin every entry's mtime and read "now" off the fake clock: entry
	// 0 is 49h old, the others 13h — only 0 crosses the 24h bound.
	for i := 0; i < 3; i++ {
		mod := gcBase.Add(36 * time.Hour)
		if i == 0 {
			mod = gcBase
		}
		path := c.path(c.key(Fingerprint("gc", i)))
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	c.Clock = func() time.Time { return gcBase.Add(49 * time.Hour) }
	res, err := c.GC(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", res.Evicted)
	}
	if entries, _, _ := c.Usage(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if _, ok := c.Get(Fingerprint("gc", 0)); ok {
		t.Fatal("49h-old entry should be evicted")
	}
}

func TestGCRemovesStaleTemps(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(c.Dir(), "put-stale.tmp")
	fresh := filepath.Join(c.Dir(), "put-fresh.tmp")
	for p, mod := range map[string]time.Time{
		stale: gcBase,                // age gcTempAge+1m: abandoned
		fresh: gcBase.Add(gcTempAge), // age 1m: maybe a live writer
	} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	c.Clock = func() time.Time { return gcBase.Add(gcTempAge + time.Minute) }
	res, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Temps != 1 {
		t.Fatalf("temps removed = %d, want 1", res.Temps)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp (possibly a live writer's) must survive")
	}
}

// TestGCRacesWarmSweep hammers GC against engines reading and writing
// the same cache — the serve daemon's steady state. A nanosecond max
// age makes every landed entry instantly stale, so eviction races
// every Get window (the real clock stays: skewing it forward would
// also age in-flight put temps past gcTempAge, a reap no live
// deployment sees). Evicted entries must read as misses and
// re-simulate; nothing may surface as an error or a wrong outcome.
func TestGCRacesWarmSweep(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	points := make([]Point, 8)
	for i := range points {
		i := i
		points[i] = Point{
			Key:         fmt.Sprintf("p%d", i),
			Fingerprint: Fingerprint("gc-race", i),
			Run:         func() Outcome { return Outcome{Dur: sim.Tick(100 + i)} },
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := cache.GC(time.Nanosecond, 2); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	eng := &Engine{Jobs: 4, Cache: cache}
	for round := 0; round < 10; round++ {
		for i, out := range eng.Run(points) {
			if out.Dur != sim.Tick(100+i) {
				t.Fatalf("round %d point %d outcome = %v", round, i, out.Dur)
			}
		}
	}
	close(stop)
	wg.Wait()

	if _, _, errors := cache.Stats(); errors != 0 {
		t.Fatalf("eviction races produced %d cache errors; evicted entries must read as plain misses", errors)
	}
}

func TestGCUnboundedKeepsEverything(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 4)
	res, err := c.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted != 0 || res.Scanned != 4 {
		t.Fatalf("unbounded gc evicted %d of %d", res.Evicted, res.Scanned)
	}
}

func TestCountersFlushAccumulates(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put(Fingerprint("x"), Outcome{Dur: 1})
	c.Get(Fingerprint("x")) // hit
	c.Get(Fingerprint("y")) // miss
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	// Flush resets the in-memory counts so a second flush adds nothing.
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	tot, err := c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 1 || tot.Misses != 1 || tot.Errors != 0 {
		t.Fatalf("counters = %+v, want 1 hit 1 miss", tot)
	}

	// A second process sharing the directory folds its counts in.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	c2.Get(Fingerprint("x"))
	if err := c2.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	tot, err = c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 2 {
		t.Fatalf("cumulative hits = %d, want 2", tot.Hits)
	}
}

func TestCountersSurviveGC(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillCache(t, c, 2)
	c.Get(Fingerprint("gc", 0))
	if err := c.FlushCounters(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(0, 1); err != nil {
		t.Fatal(err)
	}
	tot, err := c.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Hits != 1 {
		t.Fatalf("counters lost by gc: %+v", tot)
	}
}
