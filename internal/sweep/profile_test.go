package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestProfileObserveAndLookup(t *testing.T) {
	p, err := LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Wall("fp-a"); ok {
		t.Fatal("empty profile claims an estimate")
	}
	p.Observe("fp-a", 4*time.Second)
	if w, ok := p.Wall("fp-a"); !ok || w != 4*time.Second {
		t.Fatalf("first observation = %v, %v; want 4s", w, ok)
	}
	// EWMA with alpha 0.5: halfway from 4s toward 2s.
	p.Observe("fp-a", 2*time.Second)
	if w, _ := p.Wall("fp-a"); w != 3*time.Second {
		t.Fatalf("EWMA = %v, want 3s", w)
	}
	// Zero walls (cache hits) must not poison the estimate.
	p.Observe("fp-a", 0)
	if w, _ := p.Wall("fp-a"); w != 3*time.Second {
		t.Fatalf("zero wall moved the EWMA to %v", w)
	}
	// Digest keying: the plan-side lookup sees the same value.
	if w, ok := p.WallByDigest(Digest("fp-a")); !ok || w != 3*time.Second {
		t.Fatalf("WallByDigest = %v, %v", w, ok)
	}
}

func TestProfileFlushRoundTrips(t *testing.T) {
	dir := t.TempDir()
	p, err := LoadProfile(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe("fp-a", 2*time.Second)
	p.Observe("fp-b", 500*time.Millisecond)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("reloaded profile has %d entries, want 2", got.Len())
	}
	if w, _ := got.Wall("fp-a"); w != 2*time.Second {
		t.Fatalf("reloaded fp-a = %v", w)
	}
	if w, _ := got.Wall("fp-b"); w != 500*time.Millisecond {
		t.Fatalf("reloaded fp-b = %v", w)
	}
}

func TestProfileFlushOverlaysDoesNotClobber(t *testing.T) {
	// Two profiles over one directory observing disjoint points: the
	// second flush must keep the first's estimates.
	dir := t.TempDir()
	p1, _ := LoadProfile(dir)
	p1.Observe("fp-a", time.Second)
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	p2, _ := LoadProfile(dir) // loaded before p1 flushed would also work
	p2.Observe("fp-b", 2*time.Second)
	if err := p2.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _ := LoadProfile(dir)
	if w, ok := got.Wall("fp-a"); !ok || w != time.Second {
		t.Fatalf("fp-a clobbered: %v, %v", w, ok)
	}
	if w, ok := got.Wall("fp-b"); !ok || w != 2*time.Second {
		t.Fatalf("fp-b missing: %v, %v", w, ok)
	}
}

// TestProfileFlushConcurrentDisjointWriters pins the Flush
// serialization fix: two flushers racing read-overlay-rename cycles on
// one directory, each persisting a digest the other never observes.
// Every round reloads a fresh Profile so a dropped update is gone for
// good — the unlocked implementation reliably loses some.
func TestProfileFlushConcurrentDisjointWriters(t *testing.T) {
	dir := t.TempDir()
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p, err := LoadProfile(dir)
				if err != nil {
					t.Error(err)
					return
				}
				p.Observe(fmt.Sprintf("fp-w%d-%d", w, i), time.Duration(i+1)*time.Millisecond)
				if err := p.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	got, err := LoadProfile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2*rounds {
		t.Fatalf("profile holds %d entries, want %d (concurrent flush dropped updates)", got.Len(), 2*rounds)
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < rounds; i++ {
			fp := fmt.Sprintf("fp-w%d-%d", w, i)
			if wall, ok := got.Wall(fp); !ok || wall != time.Duration(i+1)*time.Millisecond {
				t.Fatalf("%s = %v, %v; want %v", fp, wall, ok, time.Duration(i+1)*time.Millisecond)
			}
		}
	}
}

func TestProfileFlushWithoutUpdatesWritesNothing(t *testing.T) {
	dir := t.TempDir()
	p, _ := LoadProfile(dir)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ProfileName)); !os.IsNotExist(err) {
		t.Fatal("no-op flush created a profile file")
	}
}

func TestProfileMalformedFileIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ProfileName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(dir); err == nil {
		t.Fatal("malformed profile loaded silently")
	}
}

func TestProfileFoldSemantics(t *testing.T) {
	src, _ := LoadProfile(t.TempDir())
	src.Observe("fp-a", 2*time.Second)
	src.Observe("fp-b", 4*time.Second)

	dst, _ := LoadProfile(t.TempDir())
	dst.Observe("fp-b", 2*time.Second)
	dst.Fold(src)
	// Absent key copies, present key moves halfway: b = (2+4)/2 = 3s.
	if w, _ := dst.Wall("fp-a"); w != 2*time.Second {
		t.Fatalf("folded fp-a = %v", w)
	}
	if w, _ := dst.Wall("fp-b"); w != 3*time.Second {
		t.Fatalf("folded fp-b = %v", w)
	}

	// Folding equal values is a no-op (fp-a matches src exactly), but a
	// still-differing key keeps moving toward the source — which is why
	// replayed folds must be ledger-gated by the caller.
	dst.Fold(src)
	if w, _ := dst.Wall("fp-a"); w != 2*time.Second {
		t.Fatalf("re-folded fp-a drifted to %v", w)
	}
	if w, _ := dst.Wall("fp-b"); w != 3500*time.Millisecond {
		t.Fatalf("re-folded fp-b = %v, want 3.5s", w)
	}
}

func TestEngineRecordsProfile(t *testing.T) {
	prof, err := LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	var calls int
	eng := &Engine{
		Jobs:    1,
		Profile: prof,
		// Each clock reading advances 100ms: every cold point measures
		// a 100ms wall.
		Clock: func() time.Time { calls++; return base.Add(time.Duration(calls) * 100 * time.Millisecond) },
	}
	points := []Point{
		{Key: "a", Fingerprint: "fp-a", Run: func() Outcome { return Outcome{Dur: 1} }},
		{Key: "b", Run: func() Outcome { return Outcome{Dur: 1} }}, // no fingerprint: unprofiled
	}
	eng.Run(points)
	if prof.Len() != 1 {
		t.Fatalf("profile holds %d entries, want 1 (fingerprint-less point must not profile)", prof.Len())
	}
	if w, ok := prof.Wall("fp-a"); !ok || w != 100*time.Millisecond {
		t.Fatalf("profiled wall = %v, %v; want 100ms", w, ok)
	}
}

func TestEngineCacheHitDoesNotProfile(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put("fp-a", Outcome{Dur: 7})
	prof, _ := LoadProfile(dir)
	eng := &Engine{Jobs: 1, Cache: cache, Profile: prof}
	eng.Run([]Point{{Key: "a", Fingerprint: "fp-a", Run: func() Outcome { panic("must be served warm") }}})
	if prof.Len() != 0 {
		t.Fatalf("cache hit profiled: %d entries", prof.Len())
	}
}

// TestProfileRejectsNonPositiveWalls pins the satellite bugfix: zero
// and negative observations (fake clocks, clock skew) must not enter
// the EWMA — neither through Observe nor through fold/Fold — because
// both fleet scheduling and explore's cost model read these
// estimates.
func TestProfileRejectsNonPositiveWalls(t *testing.T) {
	p, err := LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p.Observe("fp", 0)
	p.Observe("fp", -time.Second)
	if p.Len() != 0 {
		t.Fatalf("non-positive observations created %d estimates", p.Len())
	}
	p.Observe("fp", 10*time.Millisecond)
	p.Observe("fp", 0)
	p.Observe("fp", -time.Minute)
	if w, ok := p.Wall("fp"); !ok || w != 10*time.Millisecond {
		t.Fatalf("estimate moved to %v after non-positive observations, want 10ms", w)
	}

	// fold is the shared entry for Fold: a poisoned source estimate
	// must be skipped, not clamped into a bogus 1ns wall.
	p.fold(Digest("poison"), 0)
	p.fold(Digest("poison"), -5)
	if _, ok := p.Wall("poison"); ok {
		t.Fatal("fold admitted a non-positive wall")
	}
	p.fold(Digest("fp"), 0) // existing estimate must not move either
	if w, _ := p.Wall("fp"); w != 10*time.Millisecond {
		t.Fatalf("fold(0) moved the estimate to %v", w)
	}
}

// TestProfilePredictLadder pins explore's cost model: a profiled
// digest predicts its own EWMA; an unprofiled digest predicts the
// profile mean; an empty (or nil) profile predicts the caller's
// default.
func TestProfilePredictLadder(t *testing.T) {
	var nilProf *Profile
	if got := nilProf.Predict("d", 7*time.Second); got != 7*time.Second {
		t.Fatalf("nil profile predicted %v", got)
	}
	if got := nilProf.MeanWall(); got != 0 {
		t.Fatalf("nil profile mean = %v", got)
	}

	p, err := LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(Digest("a"), 3*time.Second); got != 3*time.Second {
		t.Fatalf("empty profile predicted %v, want the default", got)
	}
	p.Observe("a", 10*time.Millisecond)
	p.Observe("b", 30*time.Millisecond)
	if got := p.Predict(Digest("a"), time.Second); got != 10*time.Millisecond {
		t.Fatalf("profiled digest predicted %v, want its own estimate", got)
	}
	if got := p.Predict(Digest("zzz"), time.Second); got != 20*time.Millisecond {
		t.Fatalf("unprofiled digest predicted %v, want the 20ms mean", got)
	}
	if got := p.MeanWall(); got != 20*time.Millisecond {
		t.Fatalf("MeanWall = %v", got)
	}
}
