package sweep

// Per-point wall-time profiling: the engine measures how long each
// cold point takes to simulate, and a Profile persists an EWMA of
// those walls (profile.json, alongside the cache's counters.json) so
// later runs can predict point costs they have not yet paid. The
// weighted shard partitioner consumes these predictions to balance a
// fleet by measured wall time instead of point count.
//
// Profiles are keyed by the Digest of the raw (unsalted) fingerprint:
// a point's cost is a property of its configuration, not of the
// simulator build, so profiles deliberately survive rebuilds that
// invalidate the result cache.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Digest is the hex SHA-256 of a raw fingerprint — the stable identity
// shard plans and wall-time profiles reference points by without
// embedding the full (long) fingerprint material.
func Digest(fingerprint string) string {
	s := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(s[:])
}

// ProfileName holds the persisted profile inside a cache directory;
// its name deliberately fails the cache's entry-name check, so GC,
// Usage, and import all ignore it.
const ProfileName = "profile.json"

// profileFile is the on-disk format: fingerprint digest -> EWMA wall
// in nanoseconds. JSON maps marshal with sorted keys, so the file is
// byte-deterministic for a given state.
type profileFile struct {
	WallsNs map[string]int64 `json:"walls_ns"`
}

// profileAlpha weights the newest observation in the EWMA: high enough
// to track a point that genuinely changed cost, low enough that one
// noisy wall does not swing the schedule.
const profileAlpha = 0.5

// Profile is an in-memory view of a directory's persisted wall-time
// estimates plus this process's observations. It is safe for
// concurrent use by engine workers. Walls are advisory scheduling
// hints: flushes of disjoint points serialise through a lock file and
// all land, while concurrent flushes of the *same* point may lose an
// EWMA step — which costs schedule quality, never correctness.
type Profile struct {
	dir string

	mu      sync.Mutex
	walls   map[string]int64 // digest -> EWMA wall ns (current view)
	updated map[string]bool  // digests this process observed or folded
}

// LoadProfile reads dir's persisted profile (empty when the file does
// not exist — a cold profile is a state, not an error).
func LoadProfile(dir string) (*Profile, error) {
	p := &Profile{dir: dir, walls: map[string]int64{}, updated: map[string]bool{}}
	data, err := os.ReadFile(filepath.Join(dir, ProfileName))
	if os.IsNotExist(err) {
		return p, nil
	}
	if err != nil {
		return nil, err
	}
	var f profileFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sweep: %s: malformed %s: %v", dir, ProfileName, err)
	}
	for d, ns := range f.WallsNs {
		if ns > 0 {
			p.walls[d] = ns
		}
	}
	return p, nil
}

// Len reports how many points the profile holds estimates for.
func (p *Profile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.walls)
}

// Wall returns the profiled wall-time estimate for the raw
// fingerprint, or false when the point has never been measured.
func (p *Profile) Wall(fingerprint string) (time.Duration, bool) {
	return p.WallByDigest(Digest(fingerprint))
}

// WallByDigest is Wall keyed by an already-computed fingerprint digest
// — the form shard plans carry.
func (p *Profile) WallByDigest(digest string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ns, ok := p.walls[digest]
	return time.Duration(ns), ok
}

// Observe folds one measured wall into the fingerprint's EWMA. Zero
// and negative walls are ignored (cache hits complete in ~zero time
// and must not poison the estimate).
func (p *Profile) Observe(fingerprint string, wall time.Duration) {
	p.ObserveDigest(Digest(fingerprint), wall)
}

// ObserveDigest is Observe keyed by an already-computed fingerprint
// digest, for callers that memoize the hash per point.
func (p *Profile) ObserveDigest(digest string, wall time.Duration) {
	if wall <= 0 {
		return
	}
	p.fold(digest, wall.Nanoseconds())
}

// fold applies the EWMA update for one digest. Non-positive walls are
// dropped here too, not just in ObserveDigest: Fold replays whole
// source profiles (shard merges, hand-edited files), and a zero or
// negative estimate sneaking in would poison both fleet scheduling
// and explore's cost model.
func (p *Profile) fold(digest string, ns int64) {
	if ns <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if old, ok := p.walls[digest]; ok {
		ns = int64(profileAlpha*float64(ns) + (1-profileAlpha)*float64(old))
	}
	if ns < 1 {
		ns = 1
	}
	p.walls[digest] = ns
	p.updated[digest] = true
}

// Fold merges every estimate of src into p with the same EWMA update a
// fresh observation gets: absent keys copy over, present keys move
// halfway toward the source. Folding identical values is a no-op, but
// repeated folds of a *differing* source keep moving the estimate, so
// callers replaying sources (e.g. a retried shard merge) must gate
// folds on their own dedup ledger.
func (p *Profile) Fold(src *Profile) {
	src.mu.Lock()
	walls := make(map[string]int64, len(src.walls))
	for d, ns := range src.walls {
		walls[d] = ns
	}
	src.mu.Unlock()
	for d, ns := range walls {
		p.fold(d, ns)
	}
}

// Predict estimates one point's simulation wall from the digest's
// profiled EWMA, falling back to the mean across every profiled point
// (a same-scenario sibling is the best available prior), then to def
// when the profile is empty or nil — the ladder explore costs
// candidates with before promoting them against a wall budget.
func (p *Profile) Predict(digest string, def time.Duration) time.Duration {
	if p == nil {
		return def
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ns, ok := p.walls[digest]; ok {
		return time.Duration(ns)
	}
	if m := p.meanLocked(); m > 0 {
		return m
	}
	return def
}

// MeanWall is the mean profiled wall across all points (0 when the
// profile is empty or nil).
func (p *Profile) MeanWall() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.meanLocked()
}

func (p *Profile) meanLocked() time.Duration {
	if len(p.walls) == 0 {
		return 0
	}
	var sum int64
	for _, ns := range p.walls {
		sum += ns
	}
	return time.Duration(sum / int64(len(p.walls)))
}

// lockName guards Flush's read-overlay-rename cycle inside a cache
// directory. Like ProfileName it fails the cache's entry-name check,
// so GC and import ignore it.
const lockName = ProfileName + ".lock"

// Flush persists the profile: under an exclusive lock on the
// directory's profile lock file, the persisted file is re-read and
// this process's updated estimates are overlaid, so concurrent
// flushers — goroutines or processes — profiling disjoint points
// through one directory all land. Concurrent updates to the *same*
// point still last-write-win one EWMA step, which is acceptable for a
// scheduling hint. The write is staged and renamed, so readers never
// see a half-written profile.
func (p *Profile) Flush() error {
	p.mu.Lock()
	if len(p.updated) == 0 {
		p.mu.Unlock()
		return nil
	}
	updated := make(map[string]int64, len(p.updated))
	for d := range p.updated {
		updated[d] = p.walls[d]
	}
	p.mu.Unlock()

	unlock, err := lockFile(filepath.Join(p.dir, lockName))
	if err != nil {
		return err
	}
	defer unlock()

	out := profileFile{WallsNs: map[string]int64{}}
	data, err := os.ReadFile(filepath.Join(p.dir, ProfileName))
	if err == nil {
		var f profileFile
		if json.Unmarshal(data, &f) == nil {
			for d, ns := range f.WallsNs {
				if ns > 0 {
					out.WallsNs[d] = ns
				}
			}
		}
	}
	for d, ns := range updated {
		out.WallsNs[d] = ns
	}

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(p.dir, "profile-*.tmp", ProfileName, append(enc, '\n'))
}
