package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"accesys/internal/sim"
)

// slowPoints builds n points whose outcomes are derived from their
// index; earlier points sleep longer so completion order inverts
// declaration order under parallel execution.
func slowPoints(n int, ran *atomic.Int64) []Point {
	points := make([]Point, n)
	for i := 0; i < n; i++ {
		points[i] = Point{
			Key:         fmt.Sprintf("p%d", i),
			Fingerprint: Fingerprint("slow", i),
			Run: func() Outcome {
				if ran != nil {
					ran.Add(1)
				}
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return Outcome{
					Dur:    sim.Tick(i + 1),
					Values: map[string]float64{"idx": float64(i)},
				}
			},
		}
	}
	return points
}

func TestRunPreservesDeclarationOrder(t *testing.T) {
	points := slowPoints(16, nil)
	outs := (&Engine{Jobs: 8}).Run(points)
	if len(outs) != len(points) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(points))
	}
	for i, o := range outs {
		if o.Dur != sim.Tick(i+1) || o.Value("idx") != float64(i) {
			t.Fatalf("outs[%d] = %+v, not the declared point's outcome", i, o)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := (&Engine{Jobs: 1}).Run(slowPoints(12, nil))
	par := (&Engine{Jobs: 6}).Run(slowPoints(12, nil))
	for i := range seq {
		if seq[i].Dur != par[i].Dur || seq[i].Value("idx") != par[i].Value("idx") {
			t.Fatalf("outcome %d differs: sequential %+v parallel %+v", i, seq[i], par[i])
		}
	}
}

func TestOnResultSeesEveryPointOnce(t *testing.T) {
	seen := make(map[int]int)
	eng := &Engine{Jobs: 4, OnResult: func(r Result) { seen[r.Index]++ }}
	eng.Run(slowPoints(10, nil))
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("point %d reported %d times", i, seen[i])
		}
	}
}

func TestRunPanicPropagatesWithKey(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			points := slowPoints(4, nil)
			points[2].Run = func() Outcome { panic("boom") }
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "p2") || !strings.Contains(msg, "boom") {
					t.Fatalf("panic message %q missing point key or cause", msg)
				}
			}()
			(&Engine{Jobs: jobs}).Run(points)
		})
	}
}

func TestParallelPanicFailsFast(t *testing.T) {
	const n = 12
	var ran atomic.Int64
	points := make([]Point, n)
	points[0] = Point{Key: "bad", Run: func() Outcome { panic("early failure") }}
	for i := 1; i < n; i++ {
		points[i] = Point{
			Key: fmt.Sprintf("slow%d", i),
			Run: func() Outcome {
				ran.Add(1)
				time.Sleep(30 * time.Millisecond)
				return Outcome{Dur: 1}
			},
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
		// Fail-fast: the failure aborts dispatch, so most of the
		// remaining points never run (a couple may already be in
		// flight or queued when the panic lands).
		if got := ran.Load(); got > 4 {
			t.Fatalf("%d of %d slow points ran after the failure; dispatch did not abort", got, n-1)
		}
	}()
	(&Engine{Jobs: 2}).Run(points)
}

func TestOpenSaltedUsesBuildFingerprint(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenSalted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Salt == "" {
		t.Fatal("OpenSalted left the cache unsalted")
	}
	fp := Fingerprint("x")
	a.Put(fp, Outcome{Dur: 3})
	b, err := OpenSalted(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := b.Get(fp); !ok || out.Dur != 3 {
		t.Fatalf("same binary should share entries, got %+v %v", out, ok)
	}
	unsalted, _ := Open(dir)
	if _, ok := unsalted.Get(fp); ok {
		t.Fatal("unsalted cache must not see salted entries")
	}
}

func TestSaltInvalidatesEntries(t *testing.T) {
	dir := t.TempDir()
	buildA, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	buildA.Salt = "build-a"
	fp := Fingerprint("point")
	buildA.Put(fp, Outcome{Dur: 9})

	buildB, _ := Open(dir)
	buildB.Salt = "build-b"
	if _, ok := buildB.Get(fp); ok {
		t.Fatal("entry from another build must read as a miss")
	}
	if out, ok := buildA.Get(fp); !ok || out.Dur != 9 {
		t.Fatalf("same-build entry should hit, got %+v %v", out, ok)
	}
}

func TestBinaryFingerprintStable(t *testing.T) {
	a, err := BinaryFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinaryFingerprint()
	if err != nil || a != b {
		t.Fatalf("fingerprint not stable within one process: %q vs %q (%v)", a, b, err)
	}
	if len(a) != 64 {
		t.Fatalf("expected sha256 hex, got %q", a)
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	a := Fingerprint("kind", cfg{1, "x"}, 64)
	if a != Fingerprint("kind", cfg{1, "x"}, 64) {
		t.Fatal("identical inputs gave different fingerprints")
	}
	for _, other := range []string{
		Fingerprint("kind", cfg{2, "x"}, 64),
		Fingerprint("kind", cfg{1, "y"}, 64),
		Fingerprint("kind", cfg{1, "x"}, 128),
		Fingerprint("other", cfg{1, "x"}, 64),
	} {
		if a == other {
			t.Fatal("distinct inputs aliased to one fingerprint")
		}
	}
}

func TestFingerprintRejectsUnencodable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("func value should not fingerprint")
		}
	}()
	Fingerprint(func() {})
}

func TestCacheHitSkipsRuns(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var ran atomic.Int64
	cold := (&Engine{Jobs: 4, Cache: cache}).Run(slowPoints(8, &ran))
	if ran.Load() != 8 {
		t.Fatalf("cold run executed %d points, want 8", ran.Load())
	}

	ran.Store(0)
	var cached int
	eng := &Engine{Jobs: 4, Cache: cache, OnResult: func(r Result) {
		if r.Cached {
			cached++
		}
	}}
	warm := eng.Run(slowPoints(8, &ran))
	if ran.Load() != 0 {
		t.Fatalf("warm run executed %d points, want 0", ran.Load())
	}
	if cached != 8 {
		t.Fatalf("warm run reported %d cache hits, want 8", cached)
	}
	for i := range cold {
		if cold[i].Dur != warm[i].Dur || cold[i].Value("idx") != warm[i].Value("idx") {
			t.Fatalf("cached outcome %d differs: %+v vs %+v", i, cold[i], warm[i])
		}
	}
	hits, misses, errors := cache.Stats()
	if hits != 8 || misses != 8 || errors != 0 {
		t.Fatalf("stats = %d hits %d misses %d errors, want 8/8/0", hits, misses, errors)
	}
}

func TestCacheMissOnDifferentFingerprint(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(Fingerprint("a"), Outcome{Dur: 1})
	if _, ok := cache.Get(Fingerprint("b")); ok {
		t.Fatal("different fingerprint should miss")
	}
	if out, ok := cache.Get(Fingerprint("a")); !ok || out.Dur != 1 {
		t.Fatalf("stored fingerprint should hit, got %+v %v", out, ok)
	}
}

func TestCacheCorruptEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint("corrupt-me")
	cache.Put(fp, Outcome{Dur: 42})

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one cache entry, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("corrupt entry must read as a miss")
	}
	if _, _, errors := cache.Stats(); errors == 0 {
		t.Fatal("corruption should be counted as an error")
	}

	// A fingerprint-mismatching file (hash collision, stale rename) is
	// equally a miss, and Put repairs it.
	if err := os.WriteFile(entries[0],
		[]byte(`{"fingerprint":"someone else","outcome":{"dur":7}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("mismatching fingerprint must read as a miss")
	}
	cache.Put(fp, Outcome{Dur: 42})
	if out, ok := cache.Get(fp); !ok || out.Dur != 42 {
		t.Fatalf("Put did not repair the entry: %+v %v", out, ok)
	}
}

func TestEmptyFingerprintBypassesCache(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	p := Point{Key: "uncacheable", Run: func() Outcome {
		ran.Add(1)
		return Outcome{Dur: 5}
	}}
	eng := &Engine{Jobs: 1, Cache: cache}
	eng.Run([]Point{p})
	eng.Run([]Point{p})
	if ran.Load() != 2 {
		t.Fatalf("uncacheable point ran %d times, want 2", ran.Load())
	}
	if hits, _, _ := cache.Stats(); hits != 0 {
		t.Fatalf("cache recorded %d hits for uncacheable point", hits)
	}
}

// TestFingerprintEncodingPinned pins the exact byte format of
// Fingerprint — version header plus "\n"+JSON per part — because it is
// on-disk cache key material: a drift here silently invalidates every
// existing cache entry.
func TestFingerprintEncodingPinned(t *testing.T) {
	type cfg struct {
		N    int
		Name string
	}
	parts := []any{"gemm", 256, cfg{N: 3, Name: "a<b&c"}, []float64{1, 2.5}, nil}
	want := "sweep/v1"
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		want += "\n" + string(b)
	}
	if got := Fingerprint(parts...); got != want {
		t.Fatalf("fingerprint encoding drifted:\n got %q\nwant %q", got, want)
	}
}

// TestCacheRefMatchesGetPut pins that the precomputed-Ref path and the
// plain fingerprint path address the same on-disk entry.
func TestCacheRefMatchesGetPut(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Salt = "s"
	fp := Fingerprint("ref-point")
	c.PutRef(c.Ref(fp), Outcome{Dur: 42})
	if out, ok := c.Get(fp); !ok || out.Dur != 42 {
		t.Fatalf("Get after PutRef = %v %v", out, ok)
	}
	c.Put(fp, Outcome{Dur: 7})
	if out, ok := c.GetRef(c.Ref(fp)); !ok || out.Dur != 7 {
		t.Fatalf("GetRef after Put = %v %v", out, ok)
	}
}
