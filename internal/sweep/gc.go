package sweep

// Cache lifecycle: eviction, on-disk usage accounting, and persisted
// hit/miss/error counters. Entries never expire on their own — a
// long-lived cache directory only grows — so GC bounds it by age and
// entry count, and Usage/Counters back the `accesys cachestats`
// inspection command.

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// isEntryName reports whether a directory entry is a cache record:
// the hex SHA-256 of its key plus ".json" (see Cache.path). Anything
// else in the directory (counters file, staging temps) is not an
// entry.
func isEntryName(name string) bool {
	const hexLen = 64
	if !strings.HasSuffix(name, ".json") || len(name) != hexLen+len(".json") {
		return false
	}
	_, err := hex.DecodeString(name[:hexLen])
	return err == nil
}

// Usage reports the cache's on-disk footprint: entry count and total
// entry bytes.
func (c *Cache) Usage() (entries int, bytes int64, err error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, de := range des {
		if !isEntryName(de.Name()) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // racing eviction; skip
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// GCResult summarizes one eviction pass.
type GCResult struct {
	// Scanned counts entries examined.
	Scanned int
	// Evicted counts entries removed, EvictedBytes their total size.
	Evicted      int
	EvictedBytes int64
	// Temps counts abandoned staging files cleaned up.
	Temps int
}

// gcTempAge is how old an abandoned put-*.tmp staging file must be
// before GC removes it; younger temps may belong to a live writer.
const gcTempAge = time.Hour

// GC evicts entries last touched more than maxAge ago (0 = no age
// bound), then the oldest entries beyond maxEntries (0 = no count
// bound), and removes abandoned staging temps. Ages are measured
// against the cache's Clock. Eviction is safe against concurrent
// readers and writers: a removed entry simply reads as a miss and is
// re-simulated.
func (c *Cache) GC(maxAge time.Duration, maxEntries int) (GCResult, error) {
	var res GCResult
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return res, err
	}
	now := c.now()

	type entryInfo struct {
		path string
		mod  time.Time
		size int64
	}
	var live []entryInfo
	evict := func(e entryInfo) {
		if os.Remove(e.path) == nil {
			res.Evicted++
			res.EvictedBytes += e.size
		}
	}
	for _, de := range des {
		name := de.Name()
		path := filepath.Join(c.dir, name)
		info, err := de.Info()
		if err != nil {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			if now.Sub(info.ModTime()) > gcTempAge && os.Remove(path) == nil {
				res.Temps++
			}
			continue
		}
		if !isEntryName(name) {
			continue
		}
		res.Scanned++
		e := entryInfo{path: path, mod: info.ModTime(), size: info.Size()}
		if maxAge > 0 && now.Sub(e.mod) > maxAge {
			evict(e)
			continue
		}
		live = append(live, e)
	}

	if maxEntries > 0 && len(live) > maxEntries {
		sort.Slice(live, func(i, j int) bool { return live[i].mod.Before(live[j].mod) })
		for _, e := range live[:len(live)-maxEntries] {
			evict(e)
		}
	}
	return res, nil
}

// Counters are cumulative hit/miss/error counts across processes
// sharing a cache directory.
type Counters struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Errors int `json:"errors"`
}

// countersName holds the persisted counters inside the cache dir; its
// name deliberately fails isEntryName so GC and Usage ignore it.
const countersName = "counters.json"

// Counters reads the persisted cumulative counters (zero if never
// flushed).
func (c *Cache) Counters() (Counters, error) {
	var t Counters
	data, err := os.ReadFile(filepath.Join(c.dir, countersName))
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return Counters{}, err
	}
	return t, nil
}

// FlushCounters folds this process's hit/miss/error counts into the
// persisted totals and resets the in-memory counts, so repeated
// flushes never double-count. The fold is a full read-modify-write
// (see addCountersLocked): existing persisted totals — this process's
// earlier flushes, other processes', merged shard counters — are added
// to, never clobbered. It is atomic against readers (temp file +
// rename) and against concurrent flushers and mergers on the same
// Cache (flushMu serialises the whole cycle); only a flusher in a
// different process can still race it, and a lost update there costs
// only accuracy of the advisory cachestats report. On failure the
// in-memory counts are restored so a retry can still flush them.
func (c *Cache) FlushCounters() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.mu.Lock()
	d := Counters{Hits: c.hits, Misses: c.misses, Errors: c.errors}
	c.hits, c.misses, c.errors = 0, 0, 0
	c.mu.Unlock()
	if err := c.addCountersLocked(d); err != nil {
		c.mu.Lock()
		c.hits += d.Hits
		c.misses += d.Misses
		c.errors += d.Errors
		c.mu.Unlock()
		return err
	}
	return nil
}
