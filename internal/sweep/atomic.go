package sweep

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic stages data in a temp file inside dir (pattern names
// it, and must end in ".tmp" so cache GC can reap abandoned stages)
// and renames it onto dir/name — the write-then-rename pattern every
// cache-adjacent artifact (entries, counters, shard summaries, merge
// ledgers, wall profiles) uses so readers never observe a torn file.
func WriteFileAtomic(dir, pattern, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
