package sweep

// Cache export/import: the distributed-shard merge path. A shard
// worker fills a self-contained cache directory; ImportFrom folds one
// such directory into another, entry by entry, and AddCounters folds
// its persisted counters — together they turn N shard caches into one
// canonical cache that warm-hits exactly like a single-process run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ImportStats summarises one ImportFrom pass.
type ImportStats struct {
	// Imported counts entries copied into the destination.
	Imported int
	// Duplicates counts entries the destination already held with
	// byte-identical payloads (skipped).
	Duplicates int
	// Corrupt counts unreadable or unparseable source entries
	// (skipped — Get would treat them as misses anyway).
	Corrupt int
}

// CollisionError reports two caches holding different payloads under
// one entry key — either a SHA-256 filename collision between distinct
// fingerprints (astronomically unlikely) or, the case worth detecting,
// equal fingerprints with diverging outcomes: two shard workers that
// should have produced interchangeable results did not.
type CollisionError struct {
	// Name is the colliding entry file name.
	Name string
	// SrcFingerprint and DstFingerprint are the stored (salted) keys.
	SrcFingerprint string
	DstFingerprint string
}

func (e *CollisionError) Error() string {
	if e.SrcFingerprint == e.DstFingerprint {
		return fmt.Sprintf("sweep: cache entry %s: fingerprint collision with differing payloads (divergent outcomes for one configuration)", e.Name)
	}
	return fmt.Sprintf("sweep: cache entry %s: hash collision between distinct fingerprints", e.Name)
}

// ImportFrom copies every entry of src into c. Entries already present
// with identical payloads are skipped; an entry present with a
// different payload is a *CollisionError and aborts the import (the
// destination is left valid — every entry fully copied or untouched).
// Corrupt source entries are skipped and counted; a corrupt
// destination entry is overwritten by a healthy source one. Counters
// are not touched — fold them separately with AddCounters.
func (c *Cache) ImportFrom(src *Cache) (ImportStats, error) {
	var st ImportStats
	des, err := os.ReadDir(src.dir)
	if err != nil {
		return st, err
	}
	for _, de := range des {
		name := de.Name()
		if !isEntryName(name) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src.dir, name))
		if err != nil {
			st.Corrupt++
			continue
		}
		var se entry
		if err := json.Unmarshal(data, &se); err != nil {
			st.Corrupt++
			continue
		}
		dstPath := filepath.Join(c.dir, name)
		if old, err := os.ReadFile(dstPath); err == nil {
			if bytes.Equal(old, data) {
				st.Duplicates++
				continue
			}
			var oe entry
			if err := json.Unmarshal(old, &oe); err == nil {
				return st, &CollisionError{Name: name, SrcFingerprint: se.Fingerprint, DstFingerprint: oe.Fingerprint}
			}
			// Destination entry is corrupt: the healthy source copy wins.
		}
		if err := c.writeEntry(dstPath, data); err != nil {
			return st, fmt.Errorf("sweep: importing %s: %v", name, err)
		}
		st.Imported++
	}
	return st, nil
}

// writeEntry stages data to a temp file and renames it into place, the
// same atomicity Put guarantees.
func (c *Cache) writeEntry(path string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// AddCounters folds the given deltas into the persisted totals — the
// counter half of a cache merge. Like FlushCounters it is a full
// read-modify-write: existing persisted counts are added to, never
// clobbered, so merging a shard's counters into a destination that
// already has its own history keeps both.
func (c *Cache) AddCounters(d Counters) error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	return c.addCountersLocked(d)
}

// addCountersLocked is AddCounters with flushMu held.
func (c *Cache) addCountersLocked(d Counters) error {
	t, err := c.Counters()
	if err != nil {
		return err
	}
	t.Hits += d.Hits
	t.Misses += d.Misses
	t.Errors += d.Errors
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "counters-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, countersName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
