package accel

import (
	"encoding/binary"
	"fmt"

	"accesys/internal/dma"
	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// CSR register offsets within the accelerator's BAR. Registers are
// 64-bit little-endian; the driver programs a job and rings RegCtrl.
const (
	RegCtrl    = 0x00 // write 1 to start
	RegStatus  = 0x08 // StatusIdle/Busy/Done
	RegAAddr   = 0x10 // packed A base (IOVA in host mode, phys in devmem mode)
	RegBAddr   = 0x18 // packed B base
	RegCAddr   = 0x20 // packed C base
	RegM       = 0x28
	RegN       = 0x30
	RegK       = 0x38
	RegBurst   = 0x40 // DMA request packet size in bytes (0 = keep)
	RegMSIAddr = 0x48 // host address for the completion (MSI) write; 0 disables
	RegMode    = 0x50 // ModeHost / ModeDevMem

	numRegs = 11
)

// Status register values.
const (
	StatusIdle = 0
	StatusBusy = 1
	StatusDone = 2
)

// Memory modes.
const (
	ModeHost   = 0 // operands stream over PCIe from host memory
	ModeDevMem = 1 // operands stream from device-side memory
)

// Config parameterizes a MatrixFlow instance.
type Config struct {
	// ClockMHz is the array/controller clock (default 1000 = 1 GHz).
	ClockMHz float64
	// LocalBufBytes sizes the local buffer holding the resident A
	// block, the streaming B panel, and the C staging tile
	// (default 1 MiB).
	LocalBufBytes int
	// BAR is the CSR decode window on the PCIe fabric.
	BAR mem.AddrRange
	// HostDMA configures the host-path engine (PCIe); DevDMA the
	// device-memory path engine.
	HostDMA dma.Config
	DevDMA  dma.Config
	// Backend models the systolic array (default TileModel{}).
	Backend Backend
	// Functional carries real data end to end and computes real
	// results; timing-only runs leave it false.
	Functional bool
	// CSRLatency is the register file access time (default 4 ns).
	CSRLatency sim.Tick
	// ComputeOverride, when nonzero, fixes the per-tile compute time
	// regardless of K — the knob behind the paper's roofline (Fig. 2).
	ComputeOverride sim.Tick
}

// Resolved returns the configuration with every zero field replaced
// by the default New would apply — the values an assembled MatrixFlow
// actually runs with. Analytic models derive blocking geometry and
// clocking from this.
func (c Config) Resolved() Config {
	if c.ClockMHz == 0 {
		c.ClockMHz = 1000
	}
	if c.LocalBufBytes == 0 {
		c.LocalBufBytes = 1 << 20
	}
	if c.Backend == nil {
		c.Backend = TileModel{}
	}
	if c.CSRLatency == 0 {
		c.CSRLatency = 4 * sim.Nanosecond
	}
	if c.DevDMA.BurstBytes == 0 {
		c.DevDMA.BurstBytes = 64
	}
	c.HostDMA = c.HostDMA.Resolved()
	c.DevDMA = c.DevDMA.Resolved()
	return c
}

// JobResult summarizes one completed GEMM.
type JobResult struct {
	Start, End  sim.Tick
	ComputeBusy sim.Tick
	Tiles       int
	BytesIn     uint64
	BytesOut    uint64
}

// Duration is the wall-clock simulation time of the job.
func (r JobResult) Duration() sim.Tick { return r.End - r.Start }

type job struct {
	aAddr, bAddr, cAddr uint64
	msiAddr             uint64
	m, n, k             int
	mode                int

	tilesM, tilesN int
	rbTiles        int // A-block height in tiles

	rb, rbCount int // current row block (start tile, tiles)
	q           int // current B panel
	tile        int // tile index within the block

	aBuf, bBuf, bNext []byte
	bNextReady        bool
	bWaiting          bool

	outstandingC int
	drained      bool

	start       sim.Tick
	computeBusy sim.Tick
	tiles       int
}

// MatrixFlow is the accelerator wrapper: CSRs, local buffer blocking,
// a tile scheduler with double-buffered B panels, and two DMA engines
// (host path and device-memory path).
type MatrixFlow struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	clock    sim.Clock
	csrPort  *mem.ResponsePort
	csrRespQ *mem.PacketQueue

	hostDMA *dma.Engine
	devDMA  *dma.Engine

	regs [numRegs]uint64
	job  *job

	// OnDone fires when a job completes (after the MSI write lands).
	OnDone func(JobResult)

	// CrossPost, when non-nil, carries the OnDone callback into the
	// driver's tick-domain (partitioned builds route it across the
	// domain cut like the MSI it follows); when nil OnDone runs inline
	// on the accelerator's event queue.
	CrossPost func(func())

	jobs      *stats.Counter
	tilesStat *stats.Counter
	computeNs *stats.Scalar
	gemmNs    *stats.Scalar
}

// New builds a MatrixFlow accelerator. Bind HostDMAPort to the PCIe
// endpoint, DevDMAPort to the device-memory fabric, and CSRPort to the
// device-internal bus serving the BAR range.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *MatrixFlow {
	cfg = cfg.Resolved()
	if cfg.BAR.Size() == 0 {
		panic(fmt.Sprintf("accel %s: BAR range required", name))
	}

	m := &MatrixFlow{name: name, eq: eq, cfg: cfg, clock: sim.NewClock(cfg.ClockMHz)}
	m.csrPort = mem.NewResponsePort(name+".csr", m)
	m.csrRespQ = mem.NewPacketQueue(name+".csrresp", eq, func(p *mem.Packet) bool {
		return m.csrPort.SendTimingResp(p)
	})
	m.hostDMA = dma.New(name+".hostdma", eq, reg, cfg.HostDMA)
	m.devDMA = dma.New(name+".devdma", eq, reg, cfg.DevDMA)

	g := reg.Group(name)
	m.jobs = g.Counter("jobs", "GEMM jobs completed")
	m.tilesStat = g.Counter("tiles", "output tiles computed")
	m.computeNs = g.Scalar("compute_ns", "systolic array busy time")
	m.gemmNs = g.Scalar("gemm_ns", "total GEMM wall time")
	return m
}

// CSRPort returns the register-file port (bind to the device bus).
func (m *MatrixFlow) CSRPort() *mem.ResponsePort { return m.csrPort }

// HostDMAPort returns the host-path DMA request port (bind to the
// PCIe endpoint DevPort).
func (m *MatrixFlow) HostDMAPort() *mem.RequestPort { return m.hostDMA.Port() }

// DevDMAPort returns the device-memory-path DMA request port.
func (m *MatrixFlow) DevDMAPort() *mem.RequestPort { return m.devDMA.Port() }

// Status returns the current status register value.
func (m *MatrixFlow) Status() uint64 { return m.regs[RegStatus/8] }

// RecvTimingReq implements mem.Responder for the CSR block.
func (m *MatrixFlow) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	off := m.cfg.BAR.Offset(pkt.Addr)
	idx := int(off / 8)
	if idx < 0 || idx >= numRegs || off%8 != 0 || pkt.Size != 8 {
		panic(fmt.Sprintf("accel %s: bad CSR access %v", m.name, pkt))
	}
	switch {
	case pkt.Cmd.IsWrite():
		var v uint64
		if pkt.Data != nil {
			v = binary.LittleEndian.Uint64(pkt.Data)
		}
		m.writeReg(idx, v)
	case pkt.Cmd.IsRead():
		binary.LittleEndian.PutUint64(pkt.AllocData(), m.regs[idx])
	}
	pkt.MakeResponse()
	m.csrRespQ.Schedule(pkt, m.eq.Now()+m.cfg.CSRLatency)
	return true
}

func (m *MatrixFlow) writeReg(idx int, v uint64) {
	m.regs[idx] = v
	if idx == RegCtrl/8 && v == 1 {
		m.startJob()
	}
}

// RecvRetryResp implements mem.Responder.
func (m *MatrixFlow) RecvRetryResp(port *mem.ResponsePort) { m.csrRespQ.RetryReceived() }

func (m *MatrixFlow) engine(j *job) *dma.Engine {
	if j.mode == ModeDevMem {
		return m.devDMA
	}
	return m.hostDMA
}

func (m *MatrixFlow) startJob() {
	if m.job != nil {
		panic(fmt.Sprintf("accel %s: doorbell while busy", m.name))
	}
	j := &job{
		aAddr:   m.regs[RegAAddr/8],
		bAddr:   m.regs[RegBAddr/8],
		cAddr:   m.regs[RegCAddr/8],
		msiAddr: m.regs[RegMSIAddr/8],
		m:       int(m.regs[RegM/8]),
		n:       int(m.regs[RegN/8]),
		k:       int(m.regs[RegK/8]),
		mode:    int(m.regs[RegMode/8]),
		start:   m.eq.Now(),
	}
	checkDims(j.m, j.n, j.k)
	if burst := int(m.regs[RegBurst/8]); burst > 0 {
		m.engine(j).SetBurstBytes(burst)
	}

	j.tilesM = j.m / Dim
	j.tilesN = j.n / Dim
	panel := BPanelBytes(j.k)
	avail := m.cfg.LocalBufBytes - panel - TileCBytes
	if avail < APanelBytes(j.k) {
		panic(fmt.Sprintf("accel %s: local buffer %d B cannot hold one A panel + B panel for k=%d",
			m.name, m.cfg.LocalBufBytes, j.k))
	}
	j.rbTiles = avail / APanelBytes(j.k)
	if j.rbTiles > j.tilesM {
		j.rbTiles = j.tilesM
	}

	m.job = j
	m.regs[RegStatus/8] = StatusBusy
	m.loadABlock()
}

func (m *MatrixFlow) loadABlock() {
	j := m.job
	j.rbCount = j.rbTiles
	if j.rb+j.rbCount > j.tilesM {
		j.rbCount = j.tilesM - j.rb
	}
	size := j.rbCount * APanelBytes(j.k)
	if m.cfg.Functional {
		j.aBuf = make([]byte, size)
	}
	addr := j.aAddr + uint64(j.rb*APanelBytes(j.k))
	m.engine(j).Read(0, addr, size, j.aBuf, func() {
		j.q = 0
		j.bNextReady = false
		m.loadBPanel(j.q, false)
	})
}

// loadBPanel fetches panel q; prefetch selects the bNext slot.
func (m *MatrixFlow) loadBPanel(q int, prefetch bool) {
	j := m.job
	panel := BPanelBytes(j.k)
	var buf []byte
	if m.cfg.Functional {
		buf = make([]byte, panel)
	}
	addr := j.bAddr + uint64(q*panel)
	m.engine(j).Read(1, addr, panel, buf, func() {
		if prefetch {
			j.bNext = buf
			j.bNextReady = true
			if j.bWaiting {
				j.bWaiting = false
				m.swapAndStart()
			}
			return
		}
		j.bBuf = buf
		m.startPanelComputes()
	})
}

// startPanelComputes kicks the tile loop for the current panel and
// prefetches the next panel concurrently.
func (m *MatrixFlow) startPanelComputes() {
	j := m.job
	if j.q+1 < j.tilesN {
		j.bNextReady = false
		m.loadBPanel(j.q+1, true)
	}
	j.tile = 0
	m.computeTile()
}

func (m *MatrixFlow) computeTile() {
	j := m.job
	dur := m.cfg.ComputeOverride
	if dur == 0 {
		dur = m.clock.Cycles(m.cfg.Backend.TileCycles(j.k))
	}
	j.computeBusy += dur
	m.eq.ScheduleAfter(func() { m.tileDone() }, dur)
}

func (m *MatrixFlow) tileDone() {
	j := m.job
	p := j.rb + j.tile

	var data []byte
	if m.cfg.Functional {
		aPanel := decodePanel(j.aBuf[j.tile*APanelBytes(j.k):(j.tile+1)*APanelBytes(j.k)], j.k)
		bPanel := decodePanel(j.bBuf, j.k)
		c := make([]int32, Dim*Dim)
		m.cfg.Backend.ComputeTile(aPanel, bPanel, j.k, c)
		data = encodeTile(c)
	}
	j.tiles++
	m.tilesStat.Inc()

	cOff := uint64((p*j.tilesN + j.q) * TileCBytes)
	j.outstandingC++
	m.engine(j).Write(2, j.cAddr+cOff, TileCBytes, data, func() {
		j.outstandingC--
		m.maybeFinish()
	})

	j.tile++
	if j.tile < j.rbCount {
		m.computeTile()
		return
	}
	m.advancePanel()
}

// swapAndStart promotes the prefetched B panel and starts its tiles.
func (m *MatrixFlow) swapAndStart() {
	j := m.job
	j.bBuf = j.bNext
	m.startPanelComputes()
}

// advancePanel moves to the next B panel or the next A block.
func (m *MatrixFlow) advancePanel() {
	j := m.job
	j.q++
	if j.q < j.tilesN {
		if !j.bNextReady {
			j.bWaiting = true // resume when the prefetch lands
			return
		}
		m.swapAndStart()
		return
	}
	// Row block finished.
	j.rb += j.rbCount
	if j.rb < j.tilesM {
		m.loadABlock()
		return
	}
	j.drained = true
	m.maybeFinish()
}

func (m *MatrixFlow) maybeFinish() {
	j := m.job
	if j == nil || !j.drained || j.outstandingC != 0 {
		return
	}
	j.drained = false // fire once
	if j.msiAddr != 0 {
		msi := make([]byte, 8)
		msi[0] = 1
		m.hostDMA.Write(3, j.msiAddr, 8, msi, func() { m.finish() })
		return
	}
	m.finish()
}

func (m *MatrixFlow) finish() {
	j := m.job
	now := m.eq.Now()
	m.regs[RegStatus/8] = StatusDone
	m.jobs.Inc()
	m.computeNs.Add(float64(j.computeBusy) / float64(sim.Nanosecond))
	m.gemmNs.Add(float64(now-j.start) / float64(sim.Nanosecond))

	blocks := (j.tilesM + j.rbTiles - 1) / j.rbTiles
	res := JobResult{
		Start:       j.start,
		End:         now,
		ComputeBusy: j.computeBusy,
		Tiles:       j.tiles,
		BytesIn: uint64(j.tilesM*APanelBytes(j.k)) +
			uint64(blocks*j.tilesN*BPanelBytes(j.k)),
		BytesOut: uint64(j.tilesM * j.tilesN * TileCBytes),
	}
	m.job = nil
	if m.OnDone != nil {
		if m.CrossPost != nil {
			done := m.OnDone
			m.CrossPost(func() { done(res) })
		} else {
			m.OnDone(res)
		}
	}
}

var _ mem.Responder = (*MatrixFlow)(nil)
