package accel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The paper runs Verilator-compiled RTL accelerators as child
// processes talking to gem5 over shared memory. This file implements
// the equivalent integration for AcceSys: a synchronous wire protocol
// that lets any Backend run outside the simulator process (or in a
// separate goroutine). cmd/safarm serves the protocol over
// stdin/stdout as a standalone "RTL model" process.
//
// Wire format (little-endian):
//
//	request:  op u8 | k u32 | payload
//	  opTileCycles: no payload            -> reply cycles u64
//	  opCompute:    a,b panels k*Dim i32  -> reply c tile Dim*Dim i32
//	  opName:       no payload            -> reply len u32 | bytes

const (
	opTileCycles = 1
	opCompute    = 2
	opName       = 3
)

// Serve answers protocol requests from r, computing with backend b,
// until EOF. It is the body of an accelerator model process.
func Serve(r io.Reader, w io.Writer, b Backend) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		var op [1]byte
		if _, err := io.ReadFull(br, op[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		var k uint32
		if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
			return err
		}
		switch op[0] {
		case opTileCycles:
			if err := binary.Write(bw, binary.LittleEndian, b.TileCycles(int(k))); err != nil {
				return err
			}
		case opCompute:
			a := make([]int32, int(k)*Dim)
			bp := make([]int32, int(k)*Dim)
			if err := binary.Read(br, binary.LittleEndian, a); err != nil {
				return err
			}
			if err := binary.Read(br, binary.LittleEndian, bp); err != nil {
				return err
			}
			c := make([]int32, Dim*Dim)
			b.ComputeTile(a, bp, int(k), c)
			if err := binary.Write(bw, binary.LittleEndian, c); err != nil {
				return err
			}
		case opName:
			name := []byte(b.Name())
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
				return err
			}
			if _, err := bw.Write(name); err != nil {
				return err
			}
		default:
			return fmt.Errorf("accel: unknown protocol op %d", op[0])
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// RemoteBackend drives a Backend served at the far end of rw — a pipe
// to a child process (cmd/safarm) or an in-process server goroutine.
// Calls are synchronous, preserving simulator determinism.
type RemoteBackend struct {
	r *bufio.Reader
	w io.Writer
}

// NewRemoteBackend wraps a connection to a protocol server.
func NewRemoteBackend(r io.Reader, w io.Writer) *RemoteBackend {
	return &RemoteBackend{r: bufio.NewReader(r), w: w}
}

func (rb *RemoteBackend) request(op byte, k int) {
	var hdr [5]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(k))
	if _, err := rb.w.Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("accel: remote backend write: %v", err))
	}
}

// Name implements Backend by querying the server.
func (rb *RemoteBackend) Name() string {
	rb.request(opName, 0)
	var n uint32
	if err := binary.Read(rb.r, binary.LittleEndian, &n); err != nil {
		panic(fmt.Sprintf("accel: remote backend read: %v", err))
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rb.r, buf); err != nil {
		panic(fmt.Sprintf("accel: remote backend read: %v", err))
	}
	return "remote:" + string(buf)
}

// TileCycles implements Backend.
func (rb *RemoteBackend) TileCycles(k int) uint64 {
	rb.request(opTileCycles, k)
	var cycles uint64
	if err := binary.Read(rb.r, binary.LittleEndian, &cycles); err != nil {
		panic(fmt.Sprintf("accel: remote backend read: %v", err))
	}
	return cycles
}

// ComputeTile implements Backend.
func (rb *RemoteBackend) ComputeTile(aPanel, bPanel []int32, k int, c []int32) {
	rb.request(opCompute, k)
	if err := binary.Write(rb.w, binary.LittleEndian, aPanel[:k*Dim]); err != nil {
		panic(fmt.Sprintf("accel: remote backend write: %v", err))
	}
	if err := binary.Write(rb.w, binary.LittleEndian, bPanel[:k*Dim]); err != nil {
		panic(fmt.Sprintf("accel: remote backend write: %v", err))
	}
	if err := binary.Read(rb.r, binary.LittleEndian, c[:Dim*Dim]); err != nil {
		panic(fmt.Sprintf("accel: remote backend read: %v", err))
	}
}

var _ Backend = (*RemoteBackend)(nil)
