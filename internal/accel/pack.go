package accel

import (
	"encoding/binary"
	"fmt"
)

// Packed matrix layouts. MatrixFlow's "optimized data structure"
// streams operands without strided access: the driver stages matrices
// in panel-packed form so every DMA transfer is contiguous.
//
//   - A (M x K): row panels of Dim rows, each panel k-major —
//     panel p, element [k*Dim+i] = A[p*Dim+i][k].
//   - B (K x N): column panels of Dim columns, each panel k-major —
//     panel q, element [k*Dim+j] = B[k][q*Dim+j].
//   - C (M x N): tile-packed — tile (p,q), element [i*Dim+j] =
//     C[p*Dim+i][q*Dim+j], tiles row-major.
//
// All dimensions must be multiples of Dim; callers pad with zeros
// (see PadDim).

// PadDim rounds a dimension up to the next multiple of Dim.
func PadDim(x int) int { return (x + Dim - 1) / Dim * Dim }

// ElemBytes is the element size: int32 operands and accumulators, the
// "integer format" of MatrixFlow with the 4-byte footprint the paper's
// Table IV implies (3 matrices x N^2 x 4 B).
const ElemBytes = 4

func checkDims(dims ...int) {
	for _, d := range dims {
		if d <= 0 || d%Dim != 0 {
			panic(fmt.Sprintf("accel: dimension %d must be a positive multiple of %d", d, Dim))
		}
	}
}

// PackedASize returns the byte size of a packed A.
func PackedASize(m, k int) int { checkDims(m, k); return m * k * ElemBytes }

// PackedBSize returns the byte size of a packed B.
func PackedBSize(k, n int) int { checkDims(k, n); return k * n * ElemBytes }

// PackedCSize returns the byte size of a packed C.
func PackedCSize(m, n int) int { checkDims(m, n); return m * n * ElemBytes }

// APanelBytes is the byte size of one A row panel.
func APanelBytes(k int) int { return Dim * k * ElemBytes }

// BPanelBytes is the byte size of one B column panel.
func BPanelBytes(k int) int { return Dim * k * ElemBytes }

// TileCBytes is the byte size of one packed C tile.
const TileCBytes = Dim * Dim * ElemBytes

// PackA converts a row-major M x K matrix into packed form.
func PackA(a []int32, m, k int) []byte {
	checkDims(m, k)
	out := make([]byte, PackedASize(m, k))
	for p := 0; p < m/Dim; p++ {
		base := p * APanelBytes(k)
		for kk := 0; kk < k; kk++ {
			for i := 0; i < Dim; i++ {
				v := a[(p*Dim+i)*k+kk]
				binary.LittleEndian.PutUint32(out[base+(kk*Dim+i)*ElemBytes:], uint32(v))
			}
		}
	}
	return out
}

// PackB converts a row-major K x N matrix into packed form.
func PackB(b []int32, k, n int) []byte {
	checkDims(k, n)
	out := make([]byte, PackedBSize(k, n))
	for q := 0; q < n/Dim; q++ {
		base := q * BPanelBytes(k)
		for kk := 0; kk < k; kk++ {
			for j := 0; j < Dim; j++ {
				v := b[kk*n+q*Dim+j]
				binary.LittleEndian.PutUint32(out[base+(kk*Dim+j)*ElemBytes:], uint32(v))
			}
		}
	}
	return out
}

// UnpackC converts a packed C buffer back to a row-major M x N matrix.
func UnpackC(buf []byte, m, n int) []int32 {
	checkDims(m, n)
	out := make([]int32, m*n)
	tilesN := n / Dim
	for p := 0; p < m/Dim; p++ {
		for q := 0; q < tilesN; q++ {
			base := (p*tilesN + q) * TileCBytes
			for i := 0; i < Dim; i++ {
				for j := 0; j < Dim; j++ {
					v := binary.LittleEndian.Uint32(buf[base+(i*Dim+j)*ElemBytes:])
					out[(p*Dim+i)*n+q*Dim+j] = int32(v)
				}
			}
		}
	}
	return out
}

// decodePanel turns packed panel bytes into int32s.
func decodePanel(buf []byte, k int) []int32 {
	out := make([]int32, k*Dim)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[i*ElemBytes:]))
	}
	return out
}

// encodeTile serializes a Dim x Dim tile result.
func encodeTile(c []int32) []byte {
	out := make([]byte, TileCBytes)
	for i, v := range c {
		binary.LittleEndian.PutUint32(out[i*ElemBytes:], uint32(v))
	}
	return out
}

// MatMulRef is the reference row-major GEMM used by tests and
// examples: c = a x b with a (m x k), b (k x n).
func MatMulRef(a, b []int32, m, k, n int) []int32 {
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a[i*k+kk]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[kk*n+j]
			}
		}
	}
	return c
}
