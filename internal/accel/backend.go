// Package accel implements the MatrixFlow accelerator of the paper's
// case study: a 16x16 systolic-array GEMM engine wrapped with a
// controller (CSR block), local buffer, multi-channel DMA, and a
// device-memory path. Two interchangeable backends model the array —
// a transaction-level tile model (the paper's "C++" design level) and
// a register-accurate cycle model standing in for the Verilator RTL
// path — plus an out-of-process protocol mirroring the paper's
// child-process integration (see procmodel.go and cmd/safarm).
package accel

import "fmt"

// Dim is the systolic array dimension: Dim x Dim multiply-accumulate
// units (16 in MatrixFlow).
const Dim = 16

// Backend models the systolic array: timing (cycles per tile) and
// functional computation of one Dim x Dim output tile over a full
// K-depth dot product.
//
// Panel layouts are k-major: aPanel[k*Dim+i] holds A[i][k] of the
// tile's row panel, bPanel[k*Dim+j] holds B[k][j] of the column panel;
// the result c[i*Dim+j] holds the complete dot products.
type Backend interface {
	// Name identifies the backend in stats and logs.
	Name() string
	// TileCycles returns the array-clock cycles to compute one tile
	// with the given K depth.
	TileCycles(k int) uint64
	// ComputeTile fills c (length Dim*Dim) from the panels.
	ComputeTile(aPanel, bPanel []int32, k int, c []int32)
}

// TileModel is the transaction-level backend: one cycle per K step
// once the pipeline is full, plus a fill/drain overhead. This is the
// fast model used for large sweeps.
type TileModel struct {
	// FillDrain is the pipeline fill+drain overhead in cycles
	// (default 2*(Dim-1)+2 = 32).
	FillDrain int
}

// Name implements Backend.
func (m TileModel) Name() string { return "tile" }

// TileCycles implements Backend.
func (m TileModel) TileCycles(k int) uint64 {
	fd := m.FillDrain
	if fd == 0 {
		fd = 2*(Dim-1) + 2
	}
	return uint64(k + fd)
}

// ComputeTile implements Backend with a straight triple loop.
func (m TileModel) ComputeTile(aPanel, bPanel []int32, k int, c []int32) {
	checkPanels(aPanel, bPanel, k, c)
	for i := 0; i < Dim; i++ {
		for j := 0; j < Dim; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += aPanel[kk*Dim+i] * bPanel[kk*Dim+j]
			}
			c[i*Dim+j] = acc
		}
	}
}

// CycleModel steps an output-stationary Dim x Dim PE grid register by
// register, one array clock at a time: operands enter skewed from the
// west (A) and north (B) edges and propagate through pipeline
// registers, each PE multiply-accumulating when its operands meet.
// It is the reference for the RTL design level: same interface, exact
// dataflow timing.
type CycleModel struct{}

// Name implements Backend.
func (CycleModel) Name() string { return "cycle" }

// TileCycles implements Backend: the last PE (Dim-1, Dim-1) receives
// its final operands at cycle k-1 + (Dim-1) + (Dim-1), plus one cycle
// to retire: k + 2*Dim - 1.
func (CycleModel) TileCycles(k int) uint64 { return uint64(k + 2*Dim - 1) }

// ComputeTile implements Backend by simulating the grid.
func (CycleModel) ComputeTile(aPanel, bPanel []int32, k int, c []int32) {
	checkPanels(aPanel, bPanel, k, c)
	var aReg, bReg [Dim][Dim]int32 // operand pipeline registers
	var acc [Dim][Dim]int32
	var aNew, bNew [Dim][Dim]int32

	total := k + 2*Dim - 1
	for t := 0; t < total; t++ {
		// Compute the next register state: operands shift east/south.
		for i := 0; i < Dim; i++ {
			for j := 0; j < Dim; j++ {
				var av, bv int32
				if j == 0 {
					// West edge: row i receives A[i][t-i], skewed.
					if kk := t - i; kk >= 0 && kk < k {
						av = aPanel[kk*Dim+i]
					}
				} else {
					av = aReg[i][j-1]
				}
				if i == 0 {
					// North edge: column j receives B[t-j][j], skewed.
					if kk := t - j; kk >= 0 && kk < k {
						bv = bPanel[kk*Dim+j]
					}
				} else {
					bv = bReg[i-1][j]
				}
				aNew[i][j] = av
				bNew[i][j] = bv
			}
		}
		aReg, bReg = aNew, bNew
		// Each PE multiply-accumulates its current registers. With the
		// skewed feed, PE(i,j) sees A[i][kk] and B[kk][j] aligned for
		// kk = t - i - j; zeros elsewhere contribute nothing.
		for i := 0; i < Dim; i++ {
			for j := 0; j < Dim; j++ {
				acc[i][j] += aReg[i][j] * bReg[i][j]
			}
		}
	}
	for i := 0; i < Dim; i++ {
		for j := 0; j < Dim; j++ {
			c[i*Dim+j] = acc[i][j]
		}
	}
}

func checkPanels(aPanel, bPanel []int32, k int, c []int32) {
	if len(aPanel) < k*Dim || len(bPanel) < k*Dim {
		panic(fmt.Sprintf("accel: panel too short for k=%d: a=%d b=%d", k, len(aPanel), len(bPanel)))
	}
	if len(c) < Dim*Dim {
		panic("accel: result buffer shorter than a tile")
	}
}

var _ Backend = TileModel{}
var _ Backend = CycleModel{}
