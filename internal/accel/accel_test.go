package accel

import (
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func randMat(rng *rand.Rand, n int) []int32 {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(rng.Intn(17) - 8)
	}
	return m
}

func TestPackUnpackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m, k, n = 32, 48, 64
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	c := MatMulRef(a, b, m, k, n)

	// Pack C through the tile encoder path: pack/unpack must be
	// inverse for arbitrary data.
	packed := make([]byte, PackedCSize(m, n))
	tilesN := n / Dim
	for p := 0; p < m/Dim; p++ {
		for q := 0; q < tilesN; q++ {
			tile := make([]int32, Dim*Dim)
			for i := 0; i < Dim; i++ {
				for j := 0; j < Dim; j++ {
					tile[i*Dim+j] = c[(p*Dim+i)*n+q*Dim+j]
				}
			}
			copy(packed[(p*tilesN+q)*TileCBytes:], encodeTile(tile))
		}
	}
	got := UnpackC(packed, m, n)
	for i := range c {
		if got[i] != c[i] {
			t.Fatalf("unpack mismatch at %d", i)
		}
	}
}

func TestBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{16, 48, 128} {
		aP := randMat(rng, k*Dim)
		bP := randMat(rng, k*Dim)
		c1 := make([]int32, Dim*Dim)
		c2 := make([]int32, Dim*Dim)
		TileModel{}.ComputeTile(aP, bP, k, c1)
		CycleModel{}.ComputeTile(aP, bP, k, c2)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("k=%d: cycle model disagrees with tile model at %d: %d vs %d", k, i, c2[i], c1[i])
			}
		}
	}
}

func TestBackendCycles(t *testing.T) {
	if (TileModel{}).TileCycles(1024) != 1024+32 {
		t.Fatalf("tile model cycles = %d", (TileModel{}).TileCycles(1024))
	}
	if (CycleModel{}).TileCycles(64) != 64+31 {
		t.Fatalf("cycle model cycles = %d", (CycleModel{}).TileCycles(64))
	}
}

// Property: packed panel views feed the backend to the same result as
// the reference GEMM.
func TestPackedGEMMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 16, 16*(1+rng.Intn(4)), 32
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		want := MatMulRef(a, b, m, k, n)

		pa := PackA(a, m, k)
		pb := PackB(b, k, n)
		for q := 0; q < n/Dim; q++ {
			aPanel := decodePanel(pa, k)
			bPanel := decodePanel(pb[q*BPanelBytes(k):], k)
			c := make([]int32, Dim*Dim)
			TileModel{}.ComputeTile(aPanel, bPanel, k, c)
			for i := 0; i < Dim; i++ {
				for j := 0; j < Dim; j++ {
					if c[i*Dim+j] != want[i*n+q*Dim+j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// harness wires a MatrixFlow against flat echo memories for both the
// host path and the device path, with a CSR poker.
type harness struct {
	eq      *sim.EventQueue
	mf      *MatrixFlow
	hostMem *memtest.EchoResponder
	devMem  *memtest.EchoResponder
	csr     *memtest.Requestor
	done    []JobResult
}

const (
	barBase = 0x1000_0000
	memSize = 1 << 23
)

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	cfg.BAR = mem.Range(barBase, 1<<16)
	if cfg.Backend == nil {
		cfg.Backend = TileModel{}
	}
	mf := New("mf", eq, reg, cfg)

	h := &harness{eq: eq, mf: mf}
	h.hostMem = memtest.NewEchoResponder(eq, 0, memSize, 50*sim.Nanosecond)
	mem.Bind(mf.HostDMAPort(), h.hostMem.Port)
	h.devMem = memtest.NewEchoResponder(eq, 0x40_0000, memSize, 15*sim.Nanosecond)
	mem.Bind(mf.DevDMAPort(), h.devMem.Port)
	h.csr = memtest.NewRequestor(eq)
	mem.Bind(h.csr.Port, mf.CSRPort())
	mf.OnDone = func(r JobResult) { h.done = append(h.done, r) }
	return h
}

func (h *harness) writeReg(off uint64, v uint64) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v)
	h.csr.Send(mem.NewWrite(barBase+off, buf))
}

func (h *harness) launch(aAddr, bAddr, cAddr uint64, m, n, k int, mode int) {
	h.writeReg(RegAAddr, aAddr)
	h.writeReg(RegBAddr, bAddr)
	h.writeReg(RegCAddr, cAddr)
	h.writeReg(RegM, uint64(m))
	h.writeReg(RegN, uint64(n))
	h.writeReg(RegK, uint64(k))
	h.writeReg(RegMSIAddr, 0x7000)
	h.writeReg(RegMode, uint64(mode))
	h.writeReg(RegCtrl, 1)
}

func TestGEMMEndToEnd(t *testing.T) {
	h := newHarness(t, Config{Functional: true})
	rng := rand.New(rand.NewSource(3))
	const m, k, n = 64, 64, 64
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	want := MatMulRef(a, b, m, k, n)

	h.hostMem.Store.Write(0x10000, PackA(a, m, k))
	h.hostMem.Store.Write(0x80000, PackB(b, k, n))
	h.launch(0x10000, 0x80000, 0x100000, m, n, k, ModeHost)
	h.eq.Run()

	if len(h.done) != 1 {
		t.Fatal("job did not complete")
	}
	cbuf := make([]byte, PackedCSize(m, n))
	h.hostMem.Store.Read(0x100000, cbuf)
	got := UnpackC(cbuf, m, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.mf.Status() != StatusDone {
		t.Fatalf("status = %d, want done", h.mf.Status())
	}
	// MSI landed.
	msi := make([]byte, 1)
	h.hostMem.Store.Read(0x7000, msi)
	if msi[0] != 1 {
		t.Fatal("MSI write missing")
	}
}

func TestGEMMSmallLocalBufferMultiBlock(t *testing.T) {
	// Local buffer fits one A panel + one B panel only: every tile row
	// becomes its own block and B reloads per block.
	h := newHarness(t, Config{
		Functional:    true,
		LocalBufBytes: 2*BPanelBytes(64) + TileCBytes + APanelBytes(64),
	})
	rng := rand.New(rand.NewSource(4))
	const m, k, n = 64, 64, 32
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	want := MatMulRef(a, b, m, k, n)

	h.hostMem.Store.Write(0x10000, PackA(a, m, k))
	h.hostMem.Store.Write(0x80000, PackB(b, k, n))
	h.launch(0x10000, 0x80000, 0x100000, m, n, k, ModeHost)
	h.eq.Run()
	if len(h.done) != 1 {
		t.Fatal("job did not complete")
	}
	cbuf := make([]byte, PackedCSize(m, n))
	h.hostMem.Store.Read(0x100000, cbuf)
	got := UnpackC(cbuf, m, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multi-block C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// BytesIn must reflect B reloads across blocks.
	blocks := 2 // rbTiles = 2 with this buffer (avail/panel = 2)
	wantIn := uint64(m/Dim*APanelBytes(k)) + uint64(blocks*(n/Dim)*BPanelBytes(k))
	if h.done[0].BytesIn != wantIn {
		t.Fatalf("BytesIn = %d, want %d", h.done[0].BytesIn, wantIn)
	}
}

func TestDevMemMode(t *testing.T) {
	h := newHarness(t, Config{Functional: true})
	rng := rand.New(rand.NewSource(5))
	const m, k, n = 32, 32, 32
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	want := MatMulRef(a, b, m, k, n)

	base := uint64(0x40_0000)
	h.devMem.Store.Write(0x10000, PackA(a, m, k))
	h.devMem.Store.Write(0x80000, PackB(b, k, n))
	h.launch(base+0x10000, base+0x80000, base+0x100000, m, n, k, ModeDevMem)
	h.eq.Run()
	if len(h.done) != 1 {
		t.Fatal("devmem job did not complete")
	}
	cbuf := make([]byte, PackedCSize(m, n))
	h.devMem.Store.Read(0x100000, cbuf)
	got := UnpackC(cbuf, m, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("devmem C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The MSI still travels the host path.
	msi := make([]byte, 1)
	h.hostMem.Store.Read(0x7000, msi)
	if msi[0] != 1 {
		t.Fatal("MSI write missing in devmem mode")
	}
}

func TestComputeOverrideSlowsJob(t *testing.T) {
	run := func(override sim.Tick) sim.Tick {
		h := newHarness(t, Config{ComputeOverride: override})
		h.launch(0x10000, 0x80000, 0x100000, 64, 64, 64, ModeHost)
		h.eq.Run()
		if len(h.done) != 1 {
			t.Fatal("job did not complete")
		}
		return h.done[0].Duration()
	}
	fast := run(10 * sim.Nanosecond)
	slow := run(10 * sim.Microsecond)
	if slow <= fast {
		t.Fatalf("override 10us (%v) should beat 10ns (%v)", slow, fast)
	}
	// 16 tiles at ~10us each dominate: at least 160us.
	if slow < 160*sim.Microsecond {
		t.Fatalf("slow run %v, want >= 160us", slow)
	}
}

func TestCSRReadback(t *testing.T) {
	h := newHarness(t, Config{})
	h.writeReg(RegM, 128)
	rd := mem.NewRead(barBase+RegM, 8)
	h.csr.Send(rd)
	h.eq.Run()
	if binary.LittleEndian.Uint64(rd.Data) != 128 {
		t.Fatalf("CSR readback = %d", binary.LittleEndian.Uint64(rd.Data))
	}
	rs := mem.NewRead(barBase+RegStatus, 8)
	h.csr.Send(rs)
	h.eq.Run()
	if binary.LittleEndian.Uint64(rs.Data) != StatusIdle {
		t.Fatal("status should be idle")
	}
}

func TestBurstRegisterApplies(t *testing.T) {
	h := newHarness(t, Config{})
	h.writeReg(RegBurst, 1024)
	h.launch(0x10000, 0x80000, 0x100000, 32, 32, 32, ModeHost)
	h.eq.Run()
	if got := h.mf.hostDMA.Config().BurstBytes; got != 1024 {
		t.Fatalf("burst = %d, want 1024", got)
	}
}

func TestDoorbellWhileBusyPanics(t *testing.T) {
	h := newHarness(t, Config{})
	h.launch(0x10000, 0x80000, 0x100000, 64, 64, 64, ModeHost)
	defer func() {
		if recover() == nil {
			t.Fatal("double doorbell should panic")
		}
	}()
	// Ring again immediately (before the first completes).
	h.writeReg(RegCtrl, 1)
	h.eq.Run()
}

func TestRemoteBackendOverPipe(t *testing.T) {
	// Serve a CycleModel across an in-process pipe, mirroring the
	// paper's child-process accelerator model.
	c2s := newPipe()
	s2c := newPipe()
	go Serve(c2s, s2c, CycleModel{})
	rb := NewRemoteBackend(s2c, c2s)

	if rb.Name() != "remote:cycle" {
		t.Fatalf("remote name = %q", rb.Name())
	}
	if rb.TileCycles(64) != (CycleModel{}).TileCycles(64) {
		t.Fatal("remote cycles disagree")
	}
	rng := rand.New(rand.NewSource(6))
	aP := randMat(rng, 32*Dim)
	bP := randMat(rng, 32*Dim)
	want := make([]int32, Dim*Dim)
	CycleModel{}.ComputeTile(aP, bP, 32, want)
	got := make([]int32, Dim*Dim)
	rb.ComputeTile(aP, bP, 32, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remote compute mismatch at %d", i)
		}
	}
}

// pipe is a blocking in-memory byte pipe adequate for the synchronous
// protocol (io.Pipe semantics without the stdlib's pairing).
type pipeRW struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func newPipe() *pipeRW {
	r, w := io.Pipe()
	return &pipeRW{r: r, w: w}
}

func (p *pipeRW) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeRW) Write(b []byte) (int, error) { return p.w.Write(b) }

func TestPadDim(t *testing.T) {
	if PadDim(1) != 16 || PadDim(16) != 16 || PadDim(17) != 32 || PadDim(197) != 208 {
		t.Fatal("PadDim wrong")
	}
}
