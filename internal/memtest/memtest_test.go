package memtest

import (
	"testing"

	"accesys/internal/mem"
	"accesys/internal/sim"
)

// harness wires a Requestor straight into an EchoResponder.
func harness(t *testing.T, latency sim.Tick) (*sim.EventQueue, *Requestor, *EchoResponder) {
	t.Helper()
	eq := sim.NewEventQueue()
	req := NewRequestor(eq)
	resp := NewEchoResponder(eq, 0x1000, 0x1000, latency)
	mem.Bind(req.Port, resp.Port)
	return eq, req, resp
}

func TestWriteReadRoundtrip(t *testing.T) {
	eq, req, resp := harness(t, 10*sim.Nanosecond)

	req.Send(mem.NewWrite(0x1000, []byte{0xaa, 0xbb, 0xcc, 0xdd}))
	eq.Run()
	if len(req.Done) != 1 || !req.Done[0].IsResponse() {
		t.Fatalf("write did not complete: %v", req.Done)
	}

	rd := mem.NewRead(0x1000, 4)
	req.Send(rd)
	eq.Run()
	if len(req.Done) != 2 {
		t.Fatalf("read did not complete: %d done", len(req.Done))
	}
	want := []byte{0xaa, 0xbb, 0xcc, 0xdd}
	for i, b := range want {
		if rd.Data[i] != b {
			t.Fatalf("readback[%d] = %#x, want %#x", i, rd.Data[i], b)
		}
	}
	if len(resp.Requests) != 2 {
		t.Fatalf("responder saw %d requests, want 2", len(resp.Requests))
	}
}

func TestResponseLatencyAndOrder(t *testing.T) {
	const lat = 25 * sim.Nanosecond
	eq, req, _ := harness(t, lat)

	first := mem.NewWriteSize(0x1000, 64)
	second := mem.NewWriteSize(0x1040, 64)
	req.Send(first)
	req.SendAt(second, 5*sim.Nanosecond)
	eq.Run()

	if len(req.Done) != 2 {
		t.Fatalf("%d completions, want 2", len(req.Done))
	}
	if req.Done[0] != first || req.Done[1] != second {
		t.Fatal("completions out of injection order")
	}
	if req.DoneAt[0] != lat {
		t.Fatalf("first completion at %v, want %v", req.DoneAt[0], lat)
	}
	if req.DoneAt[1] != 5*sim.Nanosecond+lat {
		t.Fatalf("second completion at %v, want %v", req.DoneAt[1], 5*sim.Nanosecond+lat)
	}
}

func TestRequestorBackpressure(t *testing.T) {
	eq, req, _ := harness(t, sim.Nanosecond)
	req.RefuseResponses = true

	req.Send(mem.NewWriteSize(0x1000, 16))
	eq.Run()
	if len(req.Done) != 0 {
		t.Fatal("response delivered despite refusal")
	}

	// Lifting backpressure retries the refused response.
	req.ReleaseResponses()
	eq.Run()
	if len(req.Done) != 1 {
		t.Fatalf("release did not deliver the response: %d done", len(req.Done))
	}
}

func TestResponderBackpressureQueuesSends(t *testing.T) {
	eq, req, resp := harness(t, sim.Nanosecond)
	resp.RefuseRequests = true

	req.Send(mem.NewWriteSize(0x1000, 16))
	req.Send(mem.NewWriteSize(0x1010, 16))
	eq.Run()
	if len(resp.Requests) != 0 {
		t.Fatal("responder accepted requests while refusing")
	}
	if req.Pending() != 2 {
		t.Fatalf("requestor should hold 2 queued packets, has %d", req.Pending())
	}

	resp.ReleaseRequests()
	eq.Run()
	if len(resp.Requests) != 2 || len(req.Done) != 2 {
		t.Fatalf("release did not drain: %d accepted, %d done", len(resp.Requests), len(req.Done))
	}
	if req.Pending() != 0 {
		t.Fatalf("requestor still holds %d packets", req.Pending())
	}
}

func TestOnDoneCallback(t *testing.T) {
	eq, req, _ := harness(t, sim.Nanosecond)
	var calls int
	req.OnDone = func(p *mem.Packet) {
		if !p.IsResponse() {
			t.Errorf("OnDone got non-response %v", p)
		}
		calls++
	}
	req.Send(mem.NewWriteSize(0x1000, 8))
	req.Send(mem.NewWriteSize(0x1008, 8))
	eq.Run()
	if calls != 2 {
		t.Fatalf("OnDone ran %d times, want 2", calls)
	}
}
