// Package memtest provides small scripted components for exercising
// timing-port protocols in tests: a Requestor that injects packets and
// records completions, and an EchoResponder that serves requests from
// backing storage after a fixed delay. They are test doubles, not
// simulation models.
package memtest

import (
	"accesys/internal/mem"
	"accesys/internal/sim"
)

// Requestor drives request packets into a component under test and
// records the responses it gets back.
type Requestor struct {
	EQ   *sim.EventQueue
	Port *mem.RequestPort

	// Done lists completed packets in completion order; DoneAt the
	// ticks they completed.
	Done   []*mem.Packet
	DoneAt []sim.Tick
	// OnDone, when non-nil, runs for every completed packet.
	OnDone func(*mem.Packet)
	// RefuseResponses makes the requestor exert backpressure; call
	// ReleaseResponses to lift it.
	RefuseResponses bool

	queue   []*mem.Packet
	blocked bool
	refused int
}

// NewRequestor builds a requestor; bind its Port to the component
// under test.
func NewRequestor(eq *sim.EventQueue) *Requestor {
	r := &Requestor{EQ: eq}
	r.Port = mem.NewRequestPort("memtest.req", r)
	return r
}

// Send injects pkt at the current tick (or queues it behind earlier
// refused packets).
func (r *Requestor) Send(pkt *mem.Packet) {
	pkt.Issued = r.EQ.Now()
	r.queue = append(r.queue, pkt)
	r.drain()
}

// SendAt schedules pkt to be injected at the given tick.
func (r *Requestor) SendAt(pkt *mem.Packet, when sim.Tick) {
	r.EQ.Schedule(func() { r.Send(pkt) }, when)
}

func (r *Requestor) drain() {
	for len(r.queue) > 0 && !r.blocked {
		if !r.Port.SendTimingReq(r.queue[0]) {
			r.blocked = true
			return
		}
		r.queue = r.queue[1:]
	}
}

// RecvTimingResp implements mem.Requestor.
func (r *Requestor) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	if r.RefuseResponses {
		r.refused++
		return false
	}
	r.Done = append(r.Done, pkt)
	r.DoneAt = append(r.DoneAt, r.EQ.Now())
	if r.OnDone != nil {
		r.OnDone(pkt)
	}
	return true
}

// RecvRetryReq implements mem.Requestor.
func (r *Requestor) RecvRetryReq(port *mem.RequestPort) {
	r.blocked = false
	r.drain()
}

// ReleaseResponses lifts backpressure and tells the peer to retry.
func (r *Requestor) ReleaseResponses() {
	r.RefuseResponses = false
	if r.refused > 0 {
		r.refused = 0
		r.Port.SendRetryResp()
	}
}

// Outstanding reports packets sent but not yet completed... it counts
// queued-but-unsent packets too.
func (r *Requestor) Pending() int { return len(r.queue) }

// EchoResponder serves requests from a Storage after a fixed latency.
type EchoResponder struct {
	EQ      *sim.EventQueue
	Port    *mem.ResponsePort
	Store   *mem.Storage
	Latency sim.Tick
	Base    uint64
	// Requests records a snapshot of every accepted request in arrival
	// order. Snapshots, not the live packets: a requester under test
	// releases its packets back to the pool after the round trip, which
	// would scramble a log of live pointers.
	Requests []*mem.Packet
	// RefuseRequests exerts backpressure until ReleaseRequests.
	RefuseRequests bool

	respQ   *mem.PacketQueue
	refused bool
}

// NewEchoResponder builds a responder covering size bytes from base.
func NewEchoResponder(eq *sim.EventQueue, base, size uint64, latency sim.Tick) *EchoResponder {
	e := &EchoResponder{EQ: eq, Store: mem.NewStorage(size), Latency: latency, Base: base}
	e.Port = mem.NewResponsePort("memtest.resp", e)
	e.respQ = mem.NewPacketQueue("memtest.respq", eq, func(p *mem.Packet) bool {
		return e.Port.SendTimingResp(p)
	})
	return e
}

// RecvTimingReq implements mem.Responder.
func (e *EchoResponder) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	if e.RefuseRequests {
		e.refused = true
		return false
	}
	snap := *pkt
	if pkt.Data != nil {
		snap.Data = append([]byte(nil), pkt.Data...)
	}
	e.Requests = append(e.Requests, &snap)
	e.Store.Access(pkt, pkt.Addr-e.Base)
	pkt.MakeResponse()
	e.respQ.Schedule(pkt, e.EQ.Now()+e.Latency)
	return true
}

// RecvRetryResp implements mem.Responder.
func (e *EchoResponder) RecvRetryResp(port *mem.ResponsePort) { e.respQ.RetryReceived() }

// ReleaseRequests lifts backpressure and signals a retry.
func (e *EchoResponder) ReleaseRequests() {
	e.RefuseRequests = false
	if e.refused {
		e.refused = false
		e.Port.SendRetryReq()
	}
}

var _ mem.Requestor = (*Requestor)(nil)
var _ mem.Responder = (*EchoResponder)(nil)
